"""Node hardware profiles and the heterogeneity model.

The testbed mixes three Xeon Gold SKUs.  Newer/faster SKUs get speed factors
above 1.0; older hardware is both slower and (per §I: "older hardware is more
prone to failure") more likely to be picked by the node-failure injector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.units import gb


@dataclass(frozen=True)
class NodeProfile:
    """Static hardware description of one node class.

    Attributes:
        name: Human-readable SKU label.
        speed_factor: Relative compute speed; execution/launch/init durations
            are divided by this (1.0 = baseline).
        memory_bytes: Installed memory available to function containers.
        container_slots: Max containers concurrently resident on the node.
        failure_weight: Relative probability of being chosen for node-level
            failure injection (older hardware fails more often).
    """

    name: str
    speed_factor: float
    memory_bytes: float
    container_slots: int
    failure_weight: float

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.container_slots <= 0:
            raise ValueError("container_slots must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.failure_weight < 0:
            raise ValueError("failure_weight must be non-negative")


#: The three SKUs of the Chameleon testbed (§V-C-1), 192 GB each.  Speed
#: factors follow base-clock/core-count ordering: 6126 (2017, 2.6 GHz) is the
#: slowest and most failure-prone, 6240R (2020) the middle, 6242 (2019,
#: 2.8 GHz high-clock) the fastest.
CHAMELEON_PROFILES: tuple[NodeProfile, ...] = (
    NodeProfile(
        name="xeon-gold-6126",
        speed_factor=0.85,
        memory_bytes=gb(192),
        container_slots=48,
        failure_weight=3.0,
    ),
    NodeProfile(
        name="xeon-gold-6240r",
        speed_factor=1.0,
        memory_bytes=gb(192),
        container_slots=48,
        failure_weight=1.5,
    ),
    NodeProfile(
        name="xeon-gold-6242",
        speed_factor=1.15,
        memory_bytes=gb(192),
        container_slots=48,
        failure_weight=1.0,
    ),
)


class HeterogeneityModel:
    """Assigns hardware profiles to node indices.

    Assignment cycles deterministically through the profile list with a
    seeded shuffle, so a 16-node cluster gets a stable mixed population and
    the same seed always produces the same mix.
    """

    def __init__(
        self,
        profiles: tuple[NodeProfile, ...] = CHAMELEON_PROFILES,
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not profiles:
            raise ValueError("at least one node profile is required")
        self.profiles = tuple(profiles)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # A single shuffled order reused cyclically keeps the population
        # balanced regardless of cluster size.
        self._order = list(range(len(self.profiles)))
        self._rng.shuffle(self._order)

    def profile_for(self, node_index: int) -> NodeProfile:
        """Profile assigned to the node with the given index."""
        if node_index < 0:
            raise ValueError("node_index must be non-negative")
        return self.profiles[self._order[node_index % len(self._order)]]

    def homogeneous(self) -> bool:
        return len(self.profiles) == 1
