"""Heterogeneous cluster substrate.

Models the paper's testbed: 16 bare-metal nodes with three Xeon Gold SKUs
(6126 / 6240R / 6242), 192 GB of memory each, connected over 10 GbE and
grouped into racks.  Heterogeneity shows up as per-node speed factors that
scale container launch, initialization, and state execution times (§I, §II).
"""

from repro.cluster.cluster import Cluster
from repro.cluster.heterogeneity import (
    CHAMELEON_PROFILES,
    HeterogeneityModel,
    NodeProfile,
)
from repro.cluster.node import Node
from repro.cluster.topology import Topology

__all__ = [
    "CHAMELEON_PROFILES",
    "Cluster",
    "HeterogeneityModel",
    "Node",
    "NodeProfile",
    "Topology",
]
