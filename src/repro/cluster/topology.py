"""Rack topology used by locality-aware replica placement (§IV-C-5-b).

The placement rules only need a coarse distance: same node < same rack <
different rack.  Racks are assigned round-robin over a configurable rack
count, mirroring a row of adjacent racks connected by 10 GbE.
"""

from __future__ import annotations


class Topology:
    """Assigns nodes to racks and answers distance queries."""

    SAME_NODE = 0
    SAME_RACK = 1
    CROSS_RACK = 2

    def __init__(self, num_racks: int = 4) -> None:
        if num_racks <= 0:
            raise ValueError("num_racks must be positive")
        self.num_racks = num_racks

    def rack_for(self, node_index: int) -> str:
        return f"rack-{node_index % self.num_racks}"

    def distance(self, rack_a: str, node_a: str, rack_b: str, node_b: str) -> int:
        """Coarse distance between two placements."""
        if node_a == node_b:
            return self.SAME_NODE
        if rack_a == rack_b:
            return self.SAME_RACK
        return self.CROSS_RACK
