"""The cluster: a set of heterogeneous nodes plus placement queries."""

from __future__ import annotations

from typing import Callable, Iterable, Optional

import numpy as np

from repro.cluster.heterogeneity import HeterogeneityModel
from repro.cluster.node import Node
from repro.cluster.topology import Topology
from repro.common.errors import PlacementError


class Cluster:
    """A fixed population of nodes with liveness and capacity queries.

    Args:
        num_nodes: Cluster size (the paper scales 1–16).
        heterogeneity: Profile assignment model; defaults to the Chameleon
            three-SKU mix.
        topology: Rack assignment; defaults to 4 racks.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        heterogeneity: Optional[HeterogeneityModel] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.topology = topology or Topology()
        model = heterogeneity or HeterogeneityModel()
        self.nodes: list[Node] = [
            Node(
                node_id=f"node-{i:02d}",
                index=i,
                profile=model.profile_for(i),
                rack=self.topology.rack_for(i),
            )
            for i in range(num_nodes)
        ]
        self._by_id = {node.node_id: node for node in self.nodes}
        self._failure_listeners: list[Callable[[Node, list], None]] = []

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterable[Node]:
        return iter(self.nodes)

    def node(self, node_id: str) -> Node:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise PlacementError(f"unknown node {node_id!r}") from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def alive_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.alive]

    def hosting_candidates(self, memory_bytes: float) -> list[Node]:
        """Alive nodes able to host a container of the given memory size."""
        return [n for n in self.nodes if n.can_host(memory_bytes)]

    def least_loaded(self, memory_bytes: float) -> Optional[Node]:
        """Candidate with the most free slots; speed breaks ties, then index.

        Preferring faster nodes on ties mirrors the paper's observation that
        heterogeneity-aware placement reduces recovery-time variance.
        """
        candidates = self.hosting_candidates(memory_bytes)
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda n: (n.slots_free, n.profile.speed_factor, -n.index),
        )

    def total_slots(self) -> int:
        return sum(n.profile.container_slots for n in self.alive_nodes())

    # ------------------------------------------------------------------
    # Node failure
    # ------------------------------------------------------------------
    def on_node_failure(self, listener: Callable[[Node, list], None]) -> None:
        """Register a callback invoked as ``listener(node, lost_containers)``."""
        self._failure_listeners.append(listener)

    def fail_node(self, node_id: str, at_time: float) -> list:
        """Kill a node; notify listeners; return the lost containers."""
        node = self.node(node_id)
        if not node.alive:
            return []
        lost = node.fail(at_time)
        for listener in self._failure_listeners:
            listener(node, lost)
        return lost

    def pick_failure_victim(
        self,
        rng: np.random.Generator,
        exclude: frozenset[str] = frozenset(),
    ) -> Optional[Node]:
        """Sample an alive node weighted by its profile's failure weight.

        ``exclude`` removes already-doomed nodes from the draw, so a batch
        of scheduled failures targets distinct victims and their precursor
        signals stay attached to nodes that actually die.  Deprovisioned
        nodes (autoscaler spares) host nothing and cannot be victims; with
        everything provisioned the candidate list — and the draw — is
        unchanged.
        """
        alive = [
            n
            for n in self.nodes
            if n.alive and n.provisioned and n.node_id not in exclude
        ]
        if not alive:
            return None
        weights = np.array([n.profile.failure_weight for n in alive], dtype=float)
        total = weights.sum()
        # Both branches must consume the stream identically: ``choice``
        # with an explicit ``p`` inverts one uniform draw regardless of
        # the weights, whereas ``integers`` uses Lemire rejection — mixing
        # them made flipping a profile's failure_weight between 0 and ε
        # perturb every subsequent draw on the stream.  All-zero weights
        # therefore degrade to a uniform ``p``, not to ``integers``.
        if total <= 0:
            probabilities = np.full(len(alive), 1.0 / len(alive))
        else:
            probabilities = weights / total
        return alive[int(rng.choice(len(alive), p=probabilities))]
