"""A single cluster node: capacity accounting and liveness."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cluster.heterogeneity import NodeProfile
from repro.common.errors import PlacementError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faas.container import Container


class Node:
    """One worker node.

    Tracks resident containers, free memory/slots, and the count of in-flight
    cold starts (used by the contention model: many simultaneous container
    launches on one node slow each other down, which is what makes the
    retry storm after a node failure expensive — §V-D-6).
    """

    def __init__(self, node_id: str, index: int, profile: NodeProfile, rack: str) -> None:
        self.node_id = node_id
        self.index = index
        self.profile = profile
        self.rack = rack
        self.alive = True
        #: deprovisioned nodes exist in the cluster (fixed topology for
        #: the fabric, detection, and shard plans) but host nothing; the
        #: autoscaler flips this as capacity scales out and in
        self.provisioned = True
        #: cordoned nodes accept no new containers (proactive mitigation
        #: drains suspect hardware before a predicted failure; the
        #: heartbeat detector also cordons suspected nodes)
        self.cordoned = False
        #: gray-failure state (chaos layer): a zombie node accepts
        #: placements but never completes them; ``chaos_speed_factor``
        #: multiplies the effective speed during a straggler window.
        self.zombie = False
        self.chaos_speed_factor = 1.0
        self.containers: dict[str, "Container"] = {}
        self.memory_used = 0.0
        self.cold_starts_in_flight = 0
        self.failed_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def memory_free(self) -> float:
        return self.profile.memory_bytes - self.memory_used

    @property
    def slots_free(self) -> int:
        return self.profile.container_slots - len(self.containers)

    def can_host(self, memory_bytes: float) -> bool:
        """True when the node is alive, uncordoned, with capacity to spare."""
        return (
            self.alive
            and self.provisioned
            and not self.cordoned
            and self.slots_free > 0
            and self.memory_free >= memory_bytes
        )

    def attach(self, container: "Container") -> None:
        """Reserve capacity for *container*.  Raises if the node cannot host it."""
        if not self.can_host(container.memory_bytes):
            raise PlacementError(
                f"node {self.node_id} cannot host container "
                f"{container.container_id} (alive={self.alive}, "
                f"slots_free={self.slots_free}, "
                f"memory_free={self.memory_free:.0f}B)"
            )
        self.containers[container.container_id] = container
        self.memory_used += container.memory_bytes

    def detach(self, container: "Container") -> None:
        """Release the capacity held by *container* (idempotent)."""
        if self.containers.pop(container.container_id, None) is not None:
            self.memory_used -= container.memory_bytes
            if self.memory_used < 1e-9:
                self.memory_used = 0.0

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def fail(self, at_time: float) -> list["Container"]:
        """Mark the node dead; return the containers that were lost."""
        self.alive = False
        self.failed_at = at_time
        lost = list(self.containers.values())
        self.containers.clear()
        self.memory_used = 0.0
        self.cold_starts_in_flight = 0
        return lost

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    def scale_duration(self, seconds: float) -> float:
        """Scale a baseline duration by this node's effective speed."""
        if self.chaos_speed_factor != 1.0:
            return seconds / (
                self.profile.speed_factor * self.chaos_speed_factor
            )
        return seconds / self.profile.speed_factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node({self.node_id}, {self.profile.name}, rack={self.rack}, "
            f"alive={self.alive}, containers={len(self.containers)})"
        )
