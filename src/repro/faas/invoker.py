"""Per-node invoker: drives container cold starts with contention.

Cold-start phases scale with node speed and with the number of cold starts
the node is running concurrently.  The contention multiplier is what makes
the default retry strategy degrade when many failed functions restart at
once ("concurrently restarts all the failed functions which leads to
resource contention and further increases the recovery time", §IV-C-4-c)
and what makes node-failure retry storms expensive (§V-D-6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.cluster.node import Node
from repro.faas.container import Container
from repro.sim.engine import Simulator
from repro.trace.tracer import NULL_TRACER, NullTracer, Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.fabric import FlowNetwork


class _WedgedHandle:
    """Placeholder pending-ready handle for a wedged (zombie) launch."""

    def cancel(self) -> None:
        pass


_WEDGED_HANDLE = _WedgedHandle()


class Invoker:
    """Drives container lifecycles on one node.

    Args:
        sim: The discrete-event engine.
        node: The node this invoker manages.
        contention_gamma: Per extra concurrent cold start, phases stretch by
            this fraction (launch time × (1 + γ·(k−1)) for k in-flight).
        network: Flow-level fabric; when set (and it models image pulls),
            the container image is pulled from the registry service over
            the fabric before the launch/init phases run.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        *,
        contention_gamma: float = 0.12,
        network: Optional["FlowNetwork"] = None,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        if contention_gamma < 0:
            raise ValueError("contention_gamma must be non-negative")
        self.sim = sim
        self.node = node
        self.contention_gamma = contention_gamma
        self.network = network
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cold_starts_total = 0
        #: Gray-failure mode (zombie node): the invoker accepts cold starts
        #: but never completes them.
        self.wedged = False
        # Handle of the step that will (eventually) make the container
        # ready: an image-pull FlowHandle or the launch+init EventHandle.
        # Both expose ``cancel()``.
        self._pending_ready: dict[str, object] = {}
        # Open "cold_start" span per in-flight launch.
        self._cold_spans: dict[str, Span] = {}

    # ------------------------------------------------------------------
    def cold_start_load(self) -> int:
        """In-flight cold starts on this node (placement load signal).

        A wedged (zombie) invoker never completes its launches, so its
        backlog only grows — load-aware placement policies steer away
        from gray nodes through this counter without any oracle.
        """
        return len(self._pending_ready)

    # ------------------------------------------------------------------
    def _contention_multiplier(self) -> float:
        k = max(1, self.node.cold_starts_in_flight)
        return 1.0 + self.contention_gamma * (k - 1)

    def cold_start(
        self,
        container: Container,
        on_ready: Callable[[Container], None],
        *,
        warm: bool = False,
    ) -> float:
        """Launch + initialize *container*; invoke *on_ready* when done.

        Returns the projected cold-start duration (the actual ready event is
        scheduled on the engine).  ``warm=True`` parks the container in the
        WARM state (replica / standby pools) instead of RUNNING.
        """
        if not self.node.alive:
            raise RuntimeError(f"node {self.node.node_id} is dead")
        self.node.cold_starts_in_flight += 1
        self.cold_starts_total += 1
        container.mark_launching(self.sim.now)
        self._cold_spans[container.container_id] = self.tracer.begin(
            "cold_start",
            f"cold_start:{container.container_id}",
            node=self.node.node_id,
            container=container.container_id,
            runtime=container.kind.value,
            warm=warm,
        )
        if self.wedged:
            # Zombie node: the kubelet accepted the pod but will never get
            # it running — it sits in LAUNCHING until the node is fenced.
            self._pending_ready[container.container_id] = _WEDGED_HANDLE
            return self.node.scale_duration(container.runtime.cold_start_s)
        network = self.network
        if network is not None and network.models_image_pulls:
            # Pull the image over the fabric first; the launch/init phases
            # (and their contention multiplier) start once it lands.
            def _pulled() -> None:
                if container.terminal or not self.node.alive:
                    self._cold_start_done(container, outcome="dead")
                    return
                self._launch_phases(container, on_ready, warm=warm)

            self._pending_ready[container.container_id] = network.image_pull(
                dest_node=self.node.node_id,
                size_bytes=container.runtime.image_size_bytes,
                on_complete=_pulled,
                label=f"pull:{container.container_id}",
            )
            return (
                network.uncontended_pull_s(container.runtime.image_size_bytes)
                + self.node.scale_duration(container.runtime.cold_start_s)
            )
        return self._launch_phases(container, on_ready, warm=warm)

    def _launch_phases(
        self,
        container: Container,
        on_ready: Callable[[Container], None],
        *,
        warm: bool,
    ) -> float:
        """Schedule the launch → init → ready sequence for *container*."""
        multiplier = self._contention_multiplier()
        launch = self.node.scale_duration(
            container.runtime.launch_time_s * multiplier
        )
        init = self.node.scale_duration(
            container.runtime.init_time_s * multiplier
        )

        def _to_init() -> None:
            if container.terminal or not self.node.alive:
                self._cold_start_done(container, outcome="dead")
                return
            container.mark_initializing()

        def _to_ready() -> None:
            alive = not container.terminal and self.node.alive
            self._cold_start_done(
                container, outcome="ready" if alive else "dead"
            )
            if not alive:
                return
            container.mark_ready(self.sim.now, warm=warm)
            on_ready(container)

        self.sim.call_in(
            launch, _to_init, label=f"launch:{container.container_id}"
        )
        handle = self.sim.call_in(
            launch + init, _to_ready, label=f"ready:{container.container_id}"
        )
        self._pending_ready[container.container_id] = handle
        return launch + init

    def _cold_start_done(
        self, container: Container, outcome: str = "ready"
    ) -> None:
        if container.container_id in self._pending_ready:
            del self._pending_ready[container.container_id]
            if self.node.cold_starts_in_flight > 0:
                self.node.cold_starts_in_flight -= 1
        span = self._cold_spans.pop(container.container_id, None)
        if span is not None:
            self.tracer.finish(span, outcome=outcome)

    def abort_cold_start(self, container: Container) -> None:
        """Cancel an in-flight cold start (container killed mid-launch)."""
        handle = self._pending_ready.get(container.container_id)
        if handle is not None:
            handle.cancel()
            self._cold_start_done(container, outcome="aborted")

    def wedge(self) -> None:
        """Enter zombie mode: freeze every in-flight cold start.

        The pending ready events are cancelled but the launches stay
        registered (and their spans open), so capacity accounting unwinds
        normally when the containers are eventually aborted or the node
        dies.
        """
        self.wedged = True
        for container_id, handle in list(self._pending_ready.items()):
            handle.cancel()
            self._pending_ready[container_id] = _WEDGED_HANDLE

    def on_node_failure(self) -> None:
        """Drop all in-flight cold starts when the node dies."""
        for handle in self._pending_ready.values():
            handle.cancel()
        self._pending_ready.clear()
        tracer = self.tracer
        for span in self._cold_spans.values():
            tracer.finish(span, outcome="node-failure")
        self._cold_spans.clear()
