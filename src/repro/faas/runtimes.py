"""Runtime images and their cold-start profiles.

A *runtime* is the container image holding the language runtime, libraries,
and packages a function needs (§I).  Cold start = container launch
(``lch_f``: pod scheduling + image setup) + runtime initialization
(``ini_f``: interpreter/JVM boot + library import).  Constants reflect the
well-documented ordering python ≈ nodejs « java on OpenWhisk-class
platforms; both phases additionally scale with node speed and with how many
cold starts the node is running concurrently (see :mod:`repro.faas.invoker`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import RuntimeKind
from repro.common.units import mb


@dataclass(frozen=True)
class RuntimeImage:
    """Cold-start and footprint profile of one runtime image.

    Attributes:
        kind: Language runtime.
        launch_time_s: Baseline container launch time ``lch_f``.
        init_time_s: Baseline runtime initialization time ``ini_f``.
        memory_bytes: Default memory allocation for containers of this
            runtime (functions may override).
        image_size_bytes: Image size; larger images launch slower on nodes
            that have not cached them (folded into ``launch_time_s`` here).
    """

    kind: RuntimeKind
    launch_time_s: float
    init_time_s: float
    memory_bytes: float
    image_size_bytes: float

    @property
    def cold_start_s(self) -> float:
        """Baseline cold-start total (before node speed / contention)."""
        return self.launch_time_s + self.init_time_s


DEFAULT_RUNTIME_IMAGES: tuple[RuntimeImage, ...] = (
    RuntimeImage(
        kind=RuntimeKind.PYTHON,
        launch_time_s=2.6,
        init_time_s=1.3,
        memory_bytes=mb(512),
        image_size_bytes=mb(450),
    ),
    RuntimeImage(
        kind=RuntimeKind.NODEJS,
        launch_time_s=2.3,
        init_time_s=0.9,
        memory_bytes=mb(512),
        image_size_bytes=mb(380),
    ),
    RuntimeImage(
        kind=RuntimeKind.JAVA,
        launch_time_s=3.4,
        init_time_s=3.1,
        memory_bytes=mb(768),
        image_size_bytes=mb(620),
    ),
)


class RuntimeRegistry:
    """Lookup of runtime images by kind."""

    def __init__(
        self, images: tuple[RuntimeImage, ...] = DEFAULT_RUNTIME_IMAGES
    ) -> None:
        self._images = {image.kind: image for image in images}
        if len(self._images) != len(images):
            raise ValueError("duplicate runtime kinds in registry")

    def get(self, kind: RuntimeKind) -> RuntimeImage:
        try:
            return self._images[kind]
        except KeyError:
            raise KeyError(
                f"no runtime image registered for {kind!r}; "
                f"known: {sorted(k.value for k in self._images)}"
            ) from None

    def kinds(self) -> list[RuntimeKind]:
        return sorted(self._images, key=lambda k: k.value)
