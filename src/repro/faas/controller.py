"""The FaaS controller: container placement, queueing, node-failure fanout.

Mirrors the OpenWhisk controller/invoker split: the controller picks a node
for each container request (respecting placement preferences and
anti-affinity), delegates the cold start to that node's invoker, and queues
requests that no node can currently host.  Listeners (the Canary Core
Module, the failure injector, metrics) subscribe to container loss events.
"""

from __future__ import annotations

import collections
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from typing import TYPE_CHECKING

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.common.types import ContainerState, RuntimeKind
from repro.faas.container import Container, ContainerPurpose
from repro.faas.invoker import Invoker
from repro.faas.limits import PlatformLimits
from repro.faas.runtimes import RuntimeRegistry
from repro.policies.base import PlacementPolicy
from repro.policies.builtin import LocalityPolicy
from repro.sim.engine import Simulator
from repro.trace.tracer import NULL_TRACER, NullTracer, Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.detection.backoff import BackoffPolicy
    from repro.network.fabric import FlowNetwork


@dataclass
class ContainerRequest:
    """A pending request for a container.

    ``on_ready`` fires once the container finishes its cold start.  The
    request may wait in the controller queue while the cluster is full.
    """

    kind: RuntimeKind
    purpose: ContainerPurpose
    on_ready: Callable[[Container], None]
    memory_bytes: Optional[float] = None
    preferred_node: Optional[str] = None
    avoid_nodes: frozenset[str] = frozenset()
    warm: bool = False
    cancelled: bool = False
    container: Optional[Container] = None
    queued_at: Optional[float] = None
    #: invoked as soon as the container object exists (cold start still
    #: pending) so owners can subscribe to loss events during launch
    on_placed: Optional[Callable[[Container], None]] = None
    #: open "queue" span while the request waits in the controller queue
    queue_span: Optional[Span] = None

    def cancel(self) -> None:
        self.cancelled = True


class FaaSController:
    """Places containers on invoker nodes and manages the pending queue."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        runtimes: Optional[RuntimeRegistry] = None,
        limits: Optional[PlatformLimits] = None,
        *,
        contention_gamma: float = 0.12,
        start_rate_limit: Optional[float] = None,
        reuse_containers: bool = False,
        reuse_idle_timeout_s: float = 60.0,
        network: Optional["FlowNetwork"] = None,
        tracer: Optional[NullTracer] = None,
        backoff: Optional["BackoffPolicy"] = None,
        policy: Optional[PlacementPolicy] = None,
    ) -> None:
        """
        Args:
            network: Flow-level fabric; when set, cold-start image pulls
                compete for registry/fabric bandwidth instead of being
                folded into the fixed launch time.
            policy: Placement policy ranking the filtered hosting
                candidates for each cold start (S39).  ``None`` keeps the
                default locality ranking — byte-identical to the
                pre-policy controller.
            backoff: Retry policy for queued placement requests; each
                queued request re-drives the queue on a jittered
                exponential schedule (models controller retry loops
                against a starved or cordoned cluster).  ``None`` keeps
                the legacy purely event-driven drain.
            start_rate_limit: Max container starts per second across the
                platform (models the controller/scheduler bottleneck of
                OpenWhisk-class deployments, where the shared controller —
                not node capacity — can gate large batches).  ``None``
                disables the limiter.
            reuse_containers: Keep completed function containers warm and
                hand them to subsequent invocations of the same runtime,
                skipping the cold start (OpenWhisk's warm-start behaviour;
                the cold-start amortization the paper defers in §V-A).
            reuse_idle_timeout_s: Idle warm containers are reclaimed after
                this long (they hold node slots and bill while parked).
        """
        if start_rate_limit is not None and start_rate_limit <= 0:
            raise ValueError("start_rate_limit must be positive or None")
        if reuse_idle_timeout_s <= 0:
            raise ValueError("reuse_idle_timeout_s must be positive")
        self.sim = sim
        self.cluster = cluster
        self.runtimes = runtimes or RuntimeRegistry()
        self.limits = limits or PlatformLimits()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.invokers: dict[str, Invoker] = {
            node.node_id: Invoker(
                sim,
                node,
                contention_gamma=contention_gamma,
                network=network,
                tracer=self.tracer,
            )
            for node in cluster.nodes
        }
        # S39 placement policy: ranks the filtered candidates at both
        # decision points (cold starts here, replicas at the placer).
        # Bound to the handles that exist at controller-construction
        # time; the platform binds detection/pricing later.
        self.policy = policy if policy is not None else LocalityPolicy()
        self.policy.bind(
            cluster=cluster, invokers=self.invokers, network=network
        )
        self.containers: dict[str, Container] = {}
        #: Non-terminal containers only.  ``containers`` keeps every
        #: container ever created (cost accounting reads it once at the
        #: end); the introspection queries used on every submission —
        #: ``active_function_count`` — must not rescan that
        #: ever-growing history, or sustained 10^5-invocation traffic runs
        #: go quadratic.  Entries are purged lazily: any terminal container
        #: encountered during iteration is dropped.
        self._live: dict[str, Container] = {}
        self._queue: collections.deque[ContainerRequest] = collections.deque()
        self._id_counter = itertools.count()
        self.start_rate_limit = start_rate_limit
        self._next_start_at = 0.0
        self._throttle_pending = False
        self.reuse_containers = reuse_containers
        self.reuse_idle_timeout_s = reuse_idle_timeout_s
        self._reuse_pool: dict[RuntimeKind, collections.deque[Container]] = (
            collections.defaultdict(collections.deque)
        )
        self.warm_starts = 0
        # Incremental concurrency accounting.  ``_active_fn_count`` is the
        # number of FUNCTION containers that are non-terminal and not
        # parked warm — exactly what the scan-based count used to compute,
        # but O(1) per query (the validator asks on every submission, which
        # at open-loop traffic rates is 10^5 times per run).
        self._active_fn_count = 0
        # kind -> node_id -> non-terminal FUNCTION containers there; feeds
        # replica co-location placement without scanning the live set.
        self._fn_node_count: dict[RuntimeKind, collections.Counter] = (
            collections.defaultdict(collections.Counter)
        )
        self._loss_listeners: list[Callable[[Container, str], None]] = []
        # Run before any per-container loss fanout on a node failure —
        # bookkeeping that must observe the death atomically (e.g. the
        # runtime manager's warm-idle replica tally) hooks in here.
        self._node_failure_pre_listeners: list[Callable[[Node], None]] = []
        cluster.on_node_failure(self._handle_node_failure)
        self.backoff = backoff
        self._backoff_rng = None  # created lazily; default runs draw nothing
        # statistics
        self.queued_requests_total = 0
        self.queue_wait_total_s = 0.0
        self.backoff_retries = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _live_containers(self) -> list[Container]:
        """Non-terminal containers; lazily purges any that terminated.

        Termination happens at several sites (voluntary teardown, reclaim
        timers, node-failure fanout), so rather than hook every one, the
        live index is self-cleaning: terminal entries found during a scan
        are dropped.  Each container is purged at most once, so the
        amortized cost stays O(live), independent of run length.
        """
        dead: list[str] = []
        out: list[Container] = []
        for container_id, container in self._live.items():
            if container.terminal:
                dead.append(container_id)
            else:
                out.append(container)
        for container_id in dead:
            del self._live[container_id]
        return out

    def active_containers(
        self, purpose: Optional[ContainerPurpose] = None
    ) -> list[Container]:
        return [
            c
            for c in self._live_containers()
            if purpose is None or c.purpose == purpose
        ]

    def active_function_count(self) -> int:
        """Concurrent *invocations*: running function containers, excluding
        warm parked ones awaiting reuse.  Maintained incrementally."""
        return self._active_fn_count

    def function_hosting_nodes(self, kind: RuntimeKind) -> list[Node]:
        """Nodes holding at least one non-terminal FUNCTION container of
        *kind* (replica co-location input; membership-equal to scanning
        ``active_containers(FUNCTION)`` but O(nodes), not O(containers))."""
        return [
            self.cluster.node(node_id)
            for node_id in self._fn_node_count.get(kind, ())
        ]

    def _note_fn_terminal(self, container: Container) -> None:
        """Bookkeeping before a FUNCTION container goes terminal.

        Must run while the container still shows its pre-terminal state:
        a parked warm container already left the active count when it was
        parked, so only non-parked ones decrement it here.
        """
        if container.purpose != ContainerPurpose.FUNCTION:
            return
        counts = self._fn_node_count[container.kind]
        node_id = container.node.node_id
        counts[node_id] -= 1
        if counts[node_id] <= 0:
            del counts[node_id]
        parked = (
            container.state == ContainerState.WARM
            and container.current_function is None
        )
        if not parked:
            self._active_fn_count -= 1

    def warm_replicas(self, kind: Optional[RuntimeKind] = None) -> list[Container]:
        return [
            c
            for c in self._live_containers()
            if c.purpose == ContainerPurpose.REPLICA
            and c.is_warm_idle
            and (kind is None or c.kind == kind)
        ]

    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _pick_node(self, request: ContainerRequest, memory: float) -> Optional[Node]:
        if request.preferred_node is not None:
            node = self.cluster.node(request.preferred_node)
            if node.can_host(memory) and node.node_id not in request.avoid_nodes:
                return node
        candidates = [
            n
            for n in self.cluster.hosting_candidates(memory)
            if n.node_id not in request.avoid_nodes
        ]
        if not candidates:
            # Fall back to ignoring anti-affinity rather than starving.
            candidates = self.cluster.hosting_candidates(memory)
        if not candidates:
            return None
        # Filtering (preferred node, anti-affinity, capacity, fallback)
        # stays here — it is platform machinery every policy must honor;
        # only the final ranking is the policy's call.  Adaptive avoidance
        # hints filter softly first (no-op while the hint set is empty).
        return self.policy.select_node(self.policy.apply_hints(candidates))

    def submit(self, request: ContainerRequest) -> ContainerRequest:
        """Place *request* now if possible, else queue it FIFO."""
        if not self._try_place(request):
            request.queued_at = self.sim.now
            request.queue_span = self.tracer.begin(
                "queue",
                f"queue:{request.kind.value}",
                runtime=request.kind.value,
                purpose=request.purpose.value,
            )
            self._queue.append(request)
            self.queued_requests_total += 1
            if self.backoff is not None:
                self._arm_place_backoff(request, 0)
        return request

    def _arm_place_backoff(self, request: ContainerRequest, retries: int) -> None:
        """Retry a queued request on the backoff schedule.

        The event-driven drain (on terminations and node failures) still
        runs; these timers add the polling retries a real controller makes
        while the cluster is starved — e.g. every node cordoned by the
        suspicion detector — and give chaos runs a bounded re-drive cadence.
        """
        assert self.backoff is not None
        if retries >= self.backoff.max_attempts:
            return
        if self._backoff_rng is None:
            self._backoff_rng = self.sim.rng.stream("chaos:place-backoff")
        wait = self.backoff.delay(retries, float(self._backoff_rng.uniform()))
        self.tracer.instant(
            "backoff",
            f"backoff:place:{request.kind.value}",
            duration=wait,
            purpose=request.purpose.value,
            retry=retries,
        )

        def _retry() -> None:
            if request.cancelled or request.container is not None:
                return
            if request not in self._queue:
                return
            self.backoff_retries += 1
            self._drain_queue()
            if (
                request.container is None
                and not request.cancelled
                and request in self._queue
            ):
                self._arm_place_backoff(request, retries + 1)

        self.sim.call_in(wait, _retry, label="place-backoff")

    def _end_queue_span(self, request: ContainerRequest, outcome: str) -> None:
        if request.queue_span is not None:
            self.tracer.finish(request.queue_span, outcome=outcome)
            request.queue_span = None

    # ------------------------------------------------------------------
    # Start-rate limiting (controller bottleneck model)
    # ------------------------------------------------------------------
    def _rate_gate_open(self) -> bool:
        if self.start_rate_limit is None:
            return True
        return self.sim.now >= self._next_start_at

    def _note_start(self) -> None:
        if self.start_rate_limit is None:
            return
        self._next_start_at = (
            max(self._next_start_at, self.sim.now) + 1.0 / self.start_rate_limit
        )

    def _schedule_throttled_drain(self) -> None:
        if self._throttle_pending or self.start_rate_limit is None:
            return
        self._throttle_pending = True

        def _drain() -> None:
            self._throttle_pending = False
            self._drain_queue()

        self.sim.call_at(
            max(self._next_start_at, self.sim.now),
            _drain,
            label="controller-throttle",
        )

    # ------------------------------------------------------------------
    # Warm-start reuse pool
    # ------------------------------------------------------------------
    def _try_reuse(self, request: ContainerRequest, memory: float) -> bool:
        """Serve *request* from a parked warm container when possible."""
        if not self.reuse_containers or request.warm:
            return False
        if request.purpose != ContainerPurpose.FUNCTION:
            return False
        pool = self._reuse_pool[request.kind]
        while pool:
            container = pool.popleft()
            if (
                container.terminal
                or not container.node.alive
                or container.memory_bytes < memory
                or container.node.node_id in request.avoid_nodes
            ):
                continue
            request.container = container
            if request.queued_at is not None:
                self.queue_wait_total_s += self.sim.now - request.queued_at
            self._end_queue_span(request, "warm-reuse")
            self.warm_starts += 1
            self._active_fn_count += 1
            # WARM -> RUNNING without a cold start; the execution binds the
            # function id when it begins its attempt.
            container.state = ContainerState.RUNNING
            container.current_function = None
            if request.on_placed is not None:
                request.on_placed(container)
            request.on_ready(container)
            return True
        return False

    def _park_for_reuse(self, container: Container) -> None:
        """Return a completed function container to the warm pool."""
        container.state = ContainerState.WARM
        container.current_function = None
        self._active_fn_count -= 1
        self._reuse_pool[container.kind].append(container)

        def _reclaim() -> None:
            # Still idle in the pool after the timeout? Tear it down.
            if container.is_warm_idle:
                pool = self._reuse_pool[container.kind]
                if container in pool:
                    pool.remove(container)
                    self._note_fn_terminal(container)
                    container.terminate(self.sim.now, ContainerState.KILLED)
                    self._drain_queue()

        self.sim.call_in(
            self.reuse_idle_timeout_s, _reclaim, label="reuse-reclaim"
        )

    def _try_place(self, request: ContainerRequest) -> bool:
        if request.cancelled:
            self._end_queue_span(request, "cancelled")
            return True  # drop silently
        runtime = self.runtimes.get(request.kind)
        memory = (
            request.memory_bytes
            if request.memory_bytes is not None
            else runtime.memory_bytes
        )
        # Warm starts reuse an existing container: no scheduler work, no
        # rate-limit charge.
        if self._try_reuse(request, memory):
            return True
        if not self._rate_gate_open():
            self._schedule_throttled_drain()
            return False
        node = self._pick_node(request, memory)
        if node is None:
            return False
        container = Container(
            container_id=f"ctr-{next(self._id_counter):06d}",
            runtime=runtime,
            node=node,
            purpose=request.purpose,
            memory_bytes=memory,
            created_at=self.sim.now,
        )
        node.attach(container)
        self.containers[container.container_id] = container
        self._live[container.container_id] = container
        if container.purpose == ContainerPurpose.FUNCTION:
            self._active_fn_count += 1
            self._fn_node_count[container.kind][node.node_id] += 1
        request.container = container
        if request.queued_at is not None:
            self.queue_wait_total_s += self.sim.now - request.queued_at
        self._end_queue_span(request, "placed")
        if request.on_placed is not None:
            request.on_placed(container)

        def _ready(c: Container) -> None:
            if not request.cancelled:
                request.on_ready(c)

        self.invokers[node.node_id].cold_start(
            container, _ready, warm=request.warm
        )
        self._note_start()
        return True

    def kick(self) -> None:
        """Re-drive the queue after external capacity changes.

        Called when the suspicion detector reinstates a cordoned node —
        queued requests may now have a home again.
        """
        self._drain_queue()

    def _drain_queue(self) -> None:
        """Retry queued requests in FIFO order until one fails to place."""
        while self._queue:
            request = self._queue[0]
            if request.cancelled:
                self._end_queue_span(request, "cancelled")
                self._queue.popleft()
                continue
            if not self._try_place(request):
                return
            self._queue.popleft()

    # ------------------------------------------------------------------
    # Termination & failure
    # ------------------------------------------------------------------
    def terminate(self, container: Container, state: ContainerState) -> None:
        """Tear down *container*; frees capacity and drains the queue.

        With container reuse enabled, successfully completed function
        containers are parked warm instead of destroyed.
        """
        if container.terminal:
            return
        if (
            self.reuse_containers
            and state is ContainerState.COMPLETED
            and container.purpose == ContainerPurpose.FUNCTION
            and container.node.alive
        ):
            self._park_for_reuse(container)
            self._drain_queue()
            return
        invoker = self.invokers[container.node.node_id]
        invoker.abort_cold_start(container)
        self._note_fn_terminal(container)
        container.terminate(self.sim.now, state)
        self._drain_queue()

    def on_container_loss(
        self, listener: Callable[[Container, str], None]
    ) -> None:
        """Register ``listener(container, reason)`` for involuntary losses."""
        self._loss_listeners.append(listener)

    def kill_container(self, container: Container, reason: str) -> None:
        """Involuntary kill (failure injection): terminate then notify."""
        if container.terminal:
            return
        self.terminate(container, ContainerState.FAILED)
        for listener in self._loss_listeners:
            listener(container, reason)

    def on_node_failure_begin(self, listener: Callable[[Node], None]) -> None:
        """Register a callback run at the top of the node-failure fanout."""
        self._node_failure_pre_listeners.append(listener)

    def _handle_node_failure(self, node: Node, lost: list[Container]) -> None:
        for pre_listener in self._node_failure_pre_listeners:
            pre_listener(node)
        self.invokers[node.node_id].on_node_failure()
        for container in lost:
            if container.terminal:
                continue
            self._note_fn_terminal(container)
            container.state = ContainerState.FAILED
            container.terminated_at = self.sim.now
            for listener in self._loss_listeners:
                listener(container, f"node-failure:{node.node_id}")
        self._drain_queue()

    # ------------------------------------------------------------------
    # Cost accounting feed
    # ------------------------------------------------------------------
    def all_containers(self) -> Iterable[Container]:
        return self.containers.values()
