"""Function containers: lifecycle + resource/cost accounting."""

from __future__ import annotations

import enum
from typing import Optional

from repro.cluster.node import Node
from repro.common.types import ContainerState, RuntimeKind
from repro.faas.runtimes import RuntimeImage


class ContainerPurpose(str, enum.Enum):
    """Why a container exists; drives cost attribution and replica logic."""

    FUNCTION = "function"    # hosts a regular function attempt
    REPLICA = "replica"      # warm replicated runtime (Canary)
    STANDBY = "standby"      # passive instance (active-standby baseline)


class Container:
    """A single container instance on a node.

    The container itself is passive — the invoker drives its cold start and
    the function execution drives its RUNNING phase.  It records the
    timestamps needed for cost accounting: a container is billed from launch
    start until termination (idle warm replicas bill too; that is exactly the
    replication cost the paper trades against recovery time).
    """

    def __init__(
        self,
        container_id: str,
        runtime: RuntimeImage,
        node: Node,
        *,
        purpose: ContainerPurpose = ContainerPurpose.FUNCTION,
        memory_bytes: Optional[float] = None,
        created_at: float = 0.0,
    ) -> None:
        self.container_id = container_id
        self.runtime = runtime
        self.node = node
        self.purpose = purpose
        self.memory_bytes = (
            memory_bytes if memory_bytes is not None else runtime.memory_bytes
        )
        self.state = ContainerState.PENDING
        self.created_at = created_at
        self.launch_started_at: Optional[float] = None
        self.ready_at: Optional[float] = None
        self.terminated_at: Optional[float] = None
        self.current_function: Optional[str] = None
        self.adopted_count = 0  # times a replica adopted a failed function

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def kind(self) -> RuntimeKind:
        return self.runtime.kind

    @property
    def terminal(self) -> bool:
        return self.state in (
            ContainerState.COMPLETED,
            ContainerState.FAILED,
            ContainerState.KILLED,
        )

    @property
    def is_warm_idle(self) -> bool:
        """A ready replica not currently hosting any function."""
        return (
            self.state == ContainerState.WARM
            and self.current_function is None
            and self.node.alive
        )

    def billed_seconds(self, now: float) -> float:
        """Wall-clock the container has been alive (for GB-s billing)."""
        start = self.launch_started_at
        if start is None:
            return 0.0
        end = self.terminated_at if self.terminated_at is not None else now
        return max(0.0, end - start)

    def billed_gb_seconds(self, now: float) -> float:
        from repro.common.units import GiB  # local import avoids cycle noise

        return self.billed_seconds(now) * (self.memory_bytes / GiB)

    # ------------------------------------------------------------------
    # Transitions (invoked by the invoker / controller / injector)
    # ------------------------------------------------------------------
    def mark_launching(self, now: float) -> None:
        self.state = ContainerState.LAUNCHING
        self.launch_started_at = now

    def mark_initializing(self) -> None:
        self.state = ContainerState.INITIALIZING

    def mark_ready(self, now: float, *, warm: bool) -> None:
        self.state = ContainerState.WARM if warm else ContainerState.RUNNING
        self.ready_at = now

    def adopt(self, function_id: str) -> None:
        """A warm replica takes over a failed function (Canary recovery)."""
        if not self.is_warm_idle:
            raise RuntimeError(
                f"container {self.container_id} cannot adopt "
                f"{function_id}: state={self.state}, "
                f"current={self.current_function}"
            )
        self.current_function = function_id
        self.state = ContainerState.RUNNING
        self.adopted_count += 1

    def terminate(self, now: float, state: ContainerState) -> None:
        if state not in (
            ContainerState.COMPLETED,
            ContainerState.FAILED,
            ContainerState.KILLED,
        ):
            raise ValueError(f"{state} is not a terminal container state")
        if self.terminal:
            return
        self.state = state
        self.terminated_at = now
        self.node.detach(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Container({self.container_id}, {self.kind.value}, "
            f"{self.purpose.value}, {self.state.value}, "
            f"node={self.node.node_id}, fn={self.current_function})"
        )
