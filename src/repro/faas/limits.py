"""Platform/account resource limits (§II-A request & concurrency failures).

Defaults follow public FaaS quotas (AWS Lambda / IBM Cloud Functions order
of magnitude): 1000 concurrent executions per account, 10 GB max memory per
function, 15 min max execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import gb


@dataclass(frozen=True)
class PlatformLimits:
    """Quotas enforced by the Request Validator Module.

    Attributes:
        max_concurrent_invocations: Account-wide concurrent execution cap.
        max_function_memory_bytes: Per-function memory allocation cap.
        max_function_timeout_s: Per-function execution time cap.
        max_job_functions: Cap on functions a single job may schedule.
    """

    max_concurrent_invocations: int = 1000
    max_function_memory_bytes: float = gb(10)
    max_function_timeout_s: float = 900.0
    max_job_functions: int = 10_000

    def __post_init__(self) -> None:
        if self.max_concurrent_invocations <= 0:
            raise ValueError("max_concurrent_invocations must be positive")
        if self.max_function_memory_bytes <= 0:
            raise ValueError("max_function_memory_bytes must be positive")
        if self.max_function_timeout_s <= 0:
            raise ValueError("max_function_timeout_s must be positive")
        if self.max_job_functions <= 0:
            raise ValueError("max_job_functions must be positive")
