"""OpenWhisk-like FaaS platform substrate (simulated).

The platform mirrors the pieces of Apache OpenWhisk the paper builds on: a
controller that places function containers on invoker nodes, per-runtime
container images with distinct cold-start profiles, platform concurrency and
resource limits, and a queue for invocations that cannot be placed yet.
All timing runs on the discrete-event engine in :mod:`repro.sim`.
"""

from repro.faas.container import Container, ContainerPurpose
from repro.faas.controller import ContainerRequest, FaaSController
from repro.faas.invoker import Invoker
from repro.faas.limits import PlatformLimits
from repro.faas.runtimes import (
    DEFAULT_RUNTIME_IMAGES,
    RuntimeImage,
    RuntimeRegistry,
)

__all__ = [
    "Container",
    "ContainerPurpose",
    "ContainerRequest",
    "DEFAULT_RUNTIME_IMAGES",
    "FaaSController",
    "Invoker",
    "PlatformLimits",
    "RuntimeImage",
    "RuntimeRegistry",
]
