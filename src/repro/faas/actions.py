"""OpenWhisk-style actions, triggers, and rules.

The paper's Fig. 1 execution flow starts from this vocabulary: *actions*
(named functions with a runtime, memory allocation, and timeout), *triggers*
(named event sources), and *rules* binding triggers to actions.  The
:class:`ActionRegistry` mirrors the ``wsk`` CLI surface (`action create`,
`trigger create`, `rule create`, `trigger fire`) and is shared by both
backends: the simulator uses it to resolve job submissions, the local
executor uses it to invoke real Python callables by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.common.errors import ReproError
from repro.common.types import RuntimeKind
from repro.common.units import mb


class ActionError(ReproError):
    """Raised for unknown/duplicate actions, triggers, or rules."""


@dataclass(frozen=True)
class ActionSpec:
    """A registered action.

    Attributes:
        name: Unique action name.
        runtime: Runtime image kind the action executes in.
        memory_bytes: Memory allocation.
        timeout_s: Execution time limit.
        handler: Optional real Python callable (local executor); the
            simulator only needs the metadata.
        annotations: Free-form key/value metadata (mirrors wsk annotations).
    """

    name: str
    runtime: RuntimeKind
    memory_bytes: float = mb(256)
    timeout_s: float = 300.0
    handler: Optional[Callable[..., Any]] = None
    annotations: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("action name must be non-empty")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")


@dataclass(frozen=True)
class TriggerSpec:
    """A named event source."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("trigger name must be non-empty")


@dataclass(frozen=True)
class RuleSpec:
    """Binds a trigger to an action (one rule per pair)."""

    name: str
    trigger: str
    action: str


@dataclass
class Activation:
    """Record of one trigger firing → action invocation."""

    activation_id: int
    trigger: str
    action: str
    params: dict[str, Any]
    result: Any = None
    invoked: bool = False


class ActionRegistry:
    """Registry + dispatcher for actions, triggers, and rules."""

    def __init__(self) -> None:
        self._actions: dict[str, ActionSpec] = {}
        self._triggers: dict[str, TriggerSpec] = {}
        self._rules: dict[str, RuleSpec] = {}
        self._activations: list[Activation] = []

    # ------------------------------------------------------------------
    # Creation (wsk {action,trigger,rule} create)
    # ------------------------------------------------------------------
    def create_action(self, spec: ActionSpec) -> None:
        if spec.name in self._actions:
            raise ActionError(f"action {spec.name!r} already exists")
        self._actions[spec.name] = spec

    def create_trigger(self, spec: TriggerSpec) -> None:
        if spec.name in self._triggers:
            raise ActionError(f"trigger {spec.name!r} already exists")
        self._triggers[spec.name] = spec

    def create_rule(self, spec: RuleSpec) -> None:
        if spec.name in self._rules:
            raise ActionError(f"rule {spec.name!r} already exists")
        if spec.trigger not in self._triggers:
            raise ActionError(f"rule references unknown trigger {spec.trigger!r}")
        if spec.action not in self._actions:
            raise ActionError(f"rule references unknown action {spec.action!r}")
        self._rules[spec.name] = spec

    def delete_action(self, name: str) -> None:
        if name not in self._actions:
            raise ActionError(f"no action {name!r}")
        bound = [r.name for r in self._rules.values() if r.action == name]
        if bound:
            raise ActionError(
                f"action {name!r} still bound by rules {bound}"
            )
        del self._actions[name]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def action(self, name: str) -> ActionSpec:
        try:
            return self._actions[name]
        except KeyError:
            raise ActionError(
                f"no action {name!r}; known: {sorted(self._actions)}"
            ) from None

    def actions(self) -> list[str]:
        return sorted(self._actions)

    def triggers(self) -> list[str]:
        return sorted(self._triggers)

    def rules_for_trigger(self, trigger: str) -> list[RuleSpec]:
        return sorted(
            (r for r in self._rules.values() if r.trigger == trigger),
            key=lambda r: r.name,
        )

    # ------------------------------------------------------------------
    # Invocation (wsk action invoke / trigger fire)
    # ------------------------------------------------------------------
    def invoke(self, name: str, **params: Any) -> Any:
        """Synchronously invoke an action's real handler (local backend)."""
        spec = self.action(name)
        if spec.handler is None:
            raise ActionError(
                f"action {name!r} has no local handler (metadata-only)"
            )
        return spec.handler(**params)

    def fire_trigger(self, trigger: str, **params: Any) -> list[Activation]:
        """Fire a trigger: invoke every action bound to it via rules."""
        if trigger not in self._triggers:
            raise ActionError(f"no trigger {trigger!r}")
        activations = []
        for rule in self.rules_for_trigger(trigger):
            activation = Activation(
                activation_id=len(self._activations),
                trigger=trigger,
                action=rule.action,
                params=dict(params),
            )
            self._activations.append(activation)
            spec = self.action(rule.action)
            if spec.handler is not None:
                activation.result = spec.handler(**params)
                activation.invoked = True
            activations.append(activation)
        return activations

    def activations(self) -> list[Activation]:
        return list(self._activations)
