"""Random fault plans for the local executor.

Mirrors the simulator's error-rate semantics on the real backend: a given
fraction of a job's functions is selected as victims, each killed at a
random state boundary.  Deterministic per seed, so the same plan can be
replayed against the canary and retry strategies.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.executor.local import FaultPlan


def random_fault_plan(
    function_states: Mapping[str, int],
    *,
    error_rate: float,
    seed: int = 0,
    max_kills_per_function: int = 1,
) -> FaultPlan:
    """Sample a kill schedule over a job's functions.

    Args:
        function_states: ``function_id -> number of states`` (kill points
            are the state boundaries ``0..n_states-1``).
        error_rate: Fraction of functions that fail (≥1 victim when > 0,
            like the simulator).
        seed: Plan seed.
        max_kills_per_function: Victims may be killed several times (each
            at a distinct, increasing state).
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be within [0, 1]")
    if max_kills_per_function < 1:
        raise ValueError("max_kills_per_function must be at least 1")
    for fid, n_states in function_states.items():
        if n_states < 1:
            raise ValueError(f"{fid}: n_states must be at least 1")

    function_ids = sorted(function_states)
    if error_rate <= 0 or not function_ids:
        return FaultPlan()
    rng = np.random.default_rng(seed)
    count = int(round(error_rate * len(function_ids)))
    count = min(max(count, 1), len(function_ids))
    picks = rng.choice(len(function_ids), size=count, replace=False)
    kills: dict[str, list[int]] = {}
    for index in sorted(int(i) for i in picks):
        fid = function_ids[index]
        n_states = function_states[fid]
        n_kills = int(rng.integers(1, max_kills_per_function + 1))
        n_kills = min(n_kills, n_states)
        states = rng.choice(n_states, size=n_kills, replace=False)
        kills[fid] = sorted(int(s) for s in states)
    return FaultPlan(kills)
