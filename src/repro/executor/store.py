"""Checkpoint store for the real executor: pickled payloads, latest-n.

Reuses the Ignite-like :class:`~repro.storage.kvstore.KeyValueStore` with
*actual* serialized payloads, so sizes and the per-key ``db_limit`` are real.
Payloads above the limit are kept in a side "spill" dict standing in for the
fast storage tier, with only the location record in the KV store — the same
split Algorithm 1 performs.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque
from typing import Any, Optional

from repro.common.units import MiB
from repro.storage.kvstore import KeyValueStore


class RealCheckpointStore:
    """Thread-safe latest-n checkpoint store over real payload bytes."""

    def __init__(
        self,
        *,
        retention: int = 3,
        db_limit_bytes: float = 8 * MiB,
    ) -> None:
        if retention < 1:
            raise ValueError("retention must be at least 1")
        self.retention = retention
        self.kv = KeyValueStore(db_limit_bytes=db_limit_bytes)
        self._spill: dict[str, bytes] = {}
        self._chains: dict[str, deque[tuple[int, str]]] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self.saves = 0
        self.restores = 0
        self.spilled = 0

    # ------------------------------------------------------------------
    def save(self, function_id: str, state_index: int, payload: Any) -> int:
        """Persist a checkpoint; returns the serialized size in bytes."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._counter += 1
            key = f"ckpt/{function_id}/{self._counter:08d}"
            if self.kv.fits(len(blob)):
                self.kv.put(key, blob, size_bytes=len(blob))
            else:
                self._spill[key] = blob
                self.kv.put(
                    key,
                    {"ckpt_name": key, "ckpt_loc": "spill"},
                    size_bytes=256.0,
                )
                self.spilled += 1
            chain = self._chains.setdefault(function_id, deque())
            chain.append((state_index, key))
            while len(chain) > self.retention:
                _, old_key = chain.popleft()
                self.kv.delete(old_key)
                self._spill.pop(old_key, None)
            self.saves += 1
        return len(blob)

    def restore(self, function_id: str) -> Optional[tuple[int, Any]]:
        """Latest checkpoint as ``(state_index, payload)``, or None."""
        with self._lock:
            chain = self._chains.get(function_id)
            if not chain:
                return None
            state_index, key = chain[-1]
            blob = self._spill.get(key)
            if blob is None:
                entry = self.kv.get(key)
                if entry is None:
                    return None
                blob = entry.value
            self.restores += 1
        return state_index, pickle.loads(blob)

    def drop(self, function_id: str) -> None:
        """Discard all checkpoints of a function (retry semantics / cleanup)."""
        with self._lock:
            chain = self._chains.pop(function_id, None)
            if not chain:
                return
            for _, key in chain:
                self.kv.delete(key)
                self._spill.pop(key, None)

    def chain_length(self, function_id: str) -> int:
        with self._lock:
            return len(self._chains.get(function_id, ()))
