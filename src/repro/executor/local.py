"""The local executor: real functions, real kills, real recovery.

``LocalExecutor.run_function`` drives one stateful function through as many
attempts as it takes, applying either the retry semantics (discard
checkpoints, restart from scratch) or the Canary semantics (keep
checkpoints; the next attempt restores and resumes).  ``run_job`` fans a
batch of functions across a thread pool — functions are independent, like
FaaS invocations.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.errors import ReproError
from repro.common.units import MiB
from repro.executor.context import CheckpointContext, FunctionKilled
from repro.executor.store import RealCheckpointStore
from repro.trace.tracer import NULL_TRACER, NullTracer

#: A stateful function: receives the checkpoint context, returns its result.
StatefulFunction = Callable[[CheckpointContext], Any]


class FaultPlan:
    """Which (function, state) boundaries to kill, each at most once.

    Kills fire-or-expire: a kill scheduled at boundary *s* fires at the
    first consulted boundary with index >= *s*.  Exact matching used to
    leave kills stuck forever when a restore (or a guard-sparse function)
    skipped past the scheduled boundary — the chaos test then reported a
    clean run while most of its planned kills never happened.

    Thread-safe: attempts across the pool consult it concurrently.
    """

    def __init__(self, kills: Optional[dict[str, list[int]]] = None) -> None:
        self._pending: dict[str, deque[int]] = {
            fid: deque(sorted(states))
            for fid, states in (kills or {}).items()
        }
        self._lock = threading.Lock()
        self.kills_fired = 0

    def should_kill(self, function_id: str, state_index: int) -> bool:
        with self._lock:
            states = self._pending.get(function_id)
            if states and states[0] <= state_index:
                states.popleft()
                self.kills_fired += 1
                return True
            return False

    def pending_kills(self) -> dict[str, tuple[int, ...]]:
        """Kills that have not fired yet (empty after a full chaos run)."""
        with self._lock:
            return {
                fid: tuple(states)
                for fid, states in self._pending.items()
                if states
            }


class JobExecutionError(ReproError):
    """One or more functions of a job failed.

    Carries the full picture so a partial failure is not a total loss:
    ``results`` holds every function that completed, ``failures`` maps each
    failing function id to the exception it raised.
    """

    def __init__(
        self,
        failures: dict[str, BaseException],
        results: dict[str, "FunctionResult"],
    ) -> None:
        names = ", ".join(sorted(failures))
        super().__init__(
            f"{len(failures)} of {len(failures) + len(results)} "
            f"functions failed: {names}"
        )
        self.failures = failures
        self.results = results


@dataclass
class FunctionResult:
    """Outcome of one function's (possibly multi-attempt) execution."""

    function_id: str
    value: Any
    attempts: int
    kills: int
    restored_states: list[Optional[int]] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def recovered_via_checkpoint(self) -> bool:
        return any(s is not None for s in self.restored_states)


class LocalExecutor:
    """Runs stateful functions with fault injection and recovery.

    Args:
        strategy: ``"canary"`` (checkpoint restore) or ``"retry"``
            (restart from scratch).
        fault_plan: Kill schedule; default none.
        retention: Latest-n checkpoints kept per function.
        db_limit_bytes: Per-key limit of the backing KV store.
        max_attempts: Safety bound on recovery loops.
        max_workers: Thread-pool width for ``run_job``.
        tracer: Span tracer; pass :func:`repro.trace.wallclock_tracer` to
            record real invoke/exec spans (thread-safe).  Default: off.
    """

    def __init__(
        self,
        *,
        strategy: str = "canary",
        fault_plan: Optional[FaultPlan] = None,
        retention: int = 3,
        db_limit_bytes: float = 8 * MiB,
        max_attempts: int = 50,
        max_workers: int = 4,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        if strategy not in ("canary", "retry"):
            raise ValueError(
                f"strategy must be 'canary' or 'retry', got {strategy!r}"
            )
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.strategy = strategy
        self.fault_plan = fault_plan or FaultPlan()
        self.store = RealCheckpointStore(
            retention=retention, db_limit_bytes=db_limit_bytes
        )
        self.max_attempts = max_attempts
        self.max_workers = max_workers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.set_clock(time.perf_counter)

    # ------------------------------------------------------------------
    def run_function(
        self, function_id: str, fn: StatefulFunction
    ) -> FunctionResult:
        """Run *fn* to completion, recovering from injected kills."""
        tracer = self.tracer
        start = time.perf_counter()
        attempts = 0
        kills = 0
        restored_states: list[Optional[int]] = []
        invoke_span = tracer.begin(
            "invoke",
            function_id,
            function=function_id,
            strategy=self.strategy,
            thread=threading.current_thread().name,
        )
        while True:
            attempts += 1
            if attempts > self.max_attempts:
                tracer.finish(
                    invoke_span, outcome="exhausted",
                    attempts=attempts - 1, kills=kills,
                )
                raise RuntimeError(
                    f"function {function_id} exceeded "
                    f"{self.max_attempts} attempts"
                )
            ctx = CheckpointContext(
                function_id,
                self.store,
                kill_hook=self.fault_plan.should_kill,
                checkpoints_enabled=self.strategy == "canary",
            )
            exec_span = tracer.begin(
                "exec",
                f"exec:{function_id}:{attempts}",
                parent=invoke_span,
                function=function_id,
                attempt=attempts,
            )
            try:
                value = fn(ctx)
            except FunctionKilled as exc:
                kills += 1
                restored_states.append(ctx.restored_from)
                tracer.finish(
                    exec_span, outcome="killed",
                    state=exc.state_index,
                    restored_from=ctx.restored_from,
                )
                if self.strategy == "retry":
                    # Retry semantics: nothing survives the container.
                    self.store.drop(function_id)
                continue
            except BaseException:
                tracer.finish(exec_span, outcome="error")
                tracer.finish(
                    invoke_span, outcome="error",
                    attempts=attempts, kills=kills,
                )
                raise
            restored_states.append(ctx.restored_from)
            tracer.finish(
                exec_span, outcome="completed",
                restored_from=ctx.restored_from,
            )
            self.store.drop(function_id)  # function done; free checkpoints
            tracer.finish(
                invoke_span, outcome="completed",
                attempts=attempts, kills=kills,
            )
            return FunctionResult(
                function_id=function_id,
                value=value,
                attempts=attempts,
                kills=kills,
                restored_states=restored_states,
                wall_time_s=time.perf_counter() - start,
            )

    def run_job(
        self, functions: dict[str, StatefulFunction]
    ) -> dict[str, FunctionResult]:
        """Run independent functions across a thread pool.

        Functions are independent, so one failure must not discard the
        others' work: every future is drained, completed results are kept,
        and a single :class:`JobExecutionError` reports the failures while
        carrying the surviving results.
        """
        if not functions:
            return {}
        results: dict[str, FunctionResult] = {}
        failures: dict[str, BaseException] = {}
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {
                fid: pool.submit(self.run_function, fid, fn)
                for fid, fn in functions.items()
            }
            for fid, future in futures.items():
                try:
                    results[fid] = future.result()
                except BaseException as exc:  # noqa: BLE001 - reported below
                    failures[fid] = exc
        if failures:
            raise JobExecutionError(failures, results)
        return results
