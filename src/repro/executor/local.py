"""The local executor: real functions, real kills, real recovery.

``LocalExecutor.run_function`` drives one stateful function through as many
attempts as it takes, applying either the retry semantics (discard
checkpoints, restart from scratch) or the Canary semantics (keep
checkpoints; the next attempt restores and resumes).  ``run_job`` fans a
batch of functions across a thread pool — functions are independent, like
FaaS invocations.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.units import MiB
from repro.executor.context import CheckpointContext, FunctionKilled
from repro.executor.store import RealCheckpointStore

#: A stateful function: receives the checkpoint context, returns its result.
StatefulFunction = Callable[[CheckpointContext], Any]


class FaultPlan:
    """Which (function, state) boundaries to kill, each at most once.

    Thread-safe: attempts across the pool consult it concurrently.
    """

    def __init__(self, kills: Optional[dict[str, list[int]]] = None) -> None:
        self._pending: dict[str, list[int]] = {
            fid: sorted(states) for fid, states in (kills or {}).items()
        }
        self._lock = threading.Lock()
        self.kills_fired = 0

    def should_kill(self, function_id: str, state_index: int) -> bool:
        with self._lock:
            states = self._pending.get(function_id)
            if states and states[0] == state_index:
                states.pop(0)
                self.kills_fired += 1
                return True
            return False


@dataclass
class FunctionResult:
    """Outcome of one function's (possibly multi-attempt) execution."""

    function_id: str
    value: Any
    attempts: int
    kills: int
    restored_states: list[Optional[int]] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def recovered_via_checkpoint(self) -> bool:
        return any(s is not None for s in self.restored_states)


class LocalExecutor:
    """Runs stateful functions with fault injection and recovery.

    Args:
        strategy: ``"canary"`` (checkpoint restore) or ``"retry"``
            (restart from scratch).
        fault_plan: Kill schedule; default none.
        retention: Latest-n checkpoints kept per function.
        db_limit_bytes: Per-key limit of the backing KV store.
        max_attempts: Safety bound on recovery loops.
        max_workers: Thread-pool width for ``run_job``.
    """

    def __init__(
        self,
        *,
        strategy: str = "canary",
        fault_plan: Optional[FaultPlan] = None,
        retention: int = 3,
        db_limit_bytes: float = 8 * MiB,
        max_attempts: int = 50,
        max_workers: int = 4,
    ) -> None:
        if strategy not in ("canary", "retry"):
            raise ValueError(
                f"strategy must be 'canary' or 'retry', got {strategy!r}"
            )
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.strategy = strategy
        self.fault_plan = fault_plan or FaultPlan()
        self.store = RealCheckpointStore(
            retention=retention, db_limit_bytes=db_limit_bytes
        )
        self.max_attempts = max_attempts
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def run_function(
        self, function_id: str, fn: StatefulFunction
    ) -> FunctionResult:
        """Run *fn* to completion, recovering from injected kills."""
        start = time.perf_counter()
        attempts = 0
        kills = 0
        restored_states: list[Optional[int]] = []
        while True:
            attempts += 1
            if attempts > self.max_attempts:
                raise RuntimeError(
                    f"function {function_id} exceeded "
                    f"{self.max_attempts} attempts"
                )
            ctx = CheckpointContext(
                function_id,
                self.store,
                kill_hook=self.fault_plan.should_kill,
                checkpoints_enabled=self.strategy == "canary",
            )
            try:
                value = fn(ctx)
            except FunctionKilled:
                kills += 1
                restored_states.append(ctx.restored_from)
                if self.strategy == "retry":
                    # Retry semantics: nothing survives the container.
                    self.store.drop(function_id)
                continue
            restored_states.append(ctx.restored_from)
            self.store.drop(function_id)  # function done; free checkpoints
            return FunctionResult(
                function_id=function_id,
                value=value,
                attempts=attempts,
                kills=kills,
                restored_states=restored_states,
                wall_time_s=time.perf_counter() - start,
            )

    def run_job(
        self, functions: dict[str, StatefulFunction]
    ) -> dict[str, FunctionResult]:
        """Run independent functions across a thread pool."""
        if not functions:
            return {}
        results: dict[str, FunctionResult] = {}
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = {
                fid: pool.submit(self.run_function, fid, fn)
                for fid, fn in functions.items()
            }
            for fid, future in futures.items():
                results[fid] = future.result()
        return results
