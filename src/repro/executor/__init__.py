"""Local real-execution backend.

Runs *actual Python stateful functions* through the Canary checkpoint API:
user code registers states and saves real (pickled) payloads; a fault plan
kills functions at chosen state boundaries; the executor recovers them with
either the retry semantics (from scratch, checkpoints discarded) or the
Canary semantics (restore the latest checkpoint and resume).

This is the backend behind the examples and the end-to-end integration
tests — it demonstrates that the recovery logic preserves results on real
computations (zlib compression, numpy training loops, BFS), not just on
simulated timings.
"""

from repro.executor.context import CheckpointContext, FunctionKilled
from repro.executor.local import FaultPlan, FunctionResult, LocalExecutor
from repro.executor.store import RealCheckpointStore

__all__ = [
    "CheckpointContext",
    "FaultPlan",
    "FunctionKilled",
    "FunctionResult",
    "LocalExecutor",
    "RealCheckpointStore",
]
