"""The checkpoint API handed to user functions.

Mirrors the paper's "minimum modification to the function code" contract
(§IV-C-4-a): the application calls ``ctx.save(state_index, payload)`` after
each state and ``ctx.restore()`` once at startup to learn where to resume.
State boundaries are also the kill points the fault plan can target.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.common.errors import ReproError
from repro.executor.store import RealCheckpointStore


class FunctionKilled(ReproError):
    """The container hosting the function was killed (fault injection)."""

    def __init__(self, function_id: str, state_index: int) -> None:
        super().__init__(
            f"function {function_id} killed at state {state_index}"
        )
        self.function_id = function_id
        self.state_index = state_index


class CheckpointContext:
    """Per-attempt handle exposing save/restore and kill points.

    Args:
        function_id: Owning function.
        store: Backing checkpoint store (shared across attempts).
        kill_hook: Called at every state boundary with the state index;
            returning True kills the function there.
        checkpoints_enabled: Canary semantics save real checkpoints; retry
            semantics run with saves disabled (the payload is dropped).
    """

    def __init__(
        self,
        function_id: str,
        store: RealCheckpointStore,
        *,
        kill_hook: Optional[Callable[[str, int], bool]] = None,
        checkpoints_enabled: bool = True,
    ) -> None:
        self.function_id = function_id
        self._store = store
        self._kill_hook = kill_hook
        self.checkpoints_enabled = checkpoints_enabled
        self.saves = 0
        self.bytes_saved = 0
        self.restored_from: Optional[int] = None

    # ------------------------------------------------------------------
    # User-facing API
    # ------------------------------------------------------------------
    def restore(self) -> Optional[tuple[int, Any]]:
        """Latest surviving checkpoint, or None to start from scratch."""
        result = self._store.restore(self.function_id)
        if result is not None:
            self.restored_from = result[0]
        return result

    def save(self, state_index: int, payload: Any) -> None:
        """Checkpoint a completed state (also a kill point).

        The kill check runs *before* the save: a function killed "right
        before a checkpoint is taken" loses the whole state — the paper's
        worst case for Canary's overhead.
        """
        self.guard(state_index)
        if self.checkpoints_enabled:
            self.bytes_saved += self._store.save(
                self.function_id, state_index, payload
            )
            self.saves += 1

    def guard(self, state_index: int) -> None:
        """Explicit kill point for code with long gaps between saves."""
        if self._kill_hook is not None and self._kill_hook(
            self.function_id, state_index
        ):
            raise FunctionKilled(self.function_id, state_index)
