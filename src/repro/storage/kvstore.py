"""An Apache-Ignite-like in-memory key-value store.

Implements the subset of Ignite semantics the paper relies on (§IV-C-4,
§V-C-1):

* in-memory entries with a per-key size limit (``db_limit`` of Algorithm 1);
* *replicated caching mode* — every entry is available cluster-wide, so a
  single node failure does not lose replicated data;
* optional *native persistence* — entries additionally survive even when
  replication is disabled;
* versioned puts and prefix queries (used for "latest n checkpoints").

Values may be arbitrary Python payloads (real checkpoint bytes in the local
executor) or pure metadata with a declared ``size_bytes`` (the simulator
never materializes 98 MB of ResNet weights).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Optional

from repro.common.errors import StorageCapacityError
from repro.common.units import MiB


@dataclass
class KVEntry:
    """One stored entry."""

    key: str
    value: Any
    size_bytes: float
    version: int
    written_at: float
    home_node: Optional[str] = None  # node that wrote it (primary copy)


class KeyValueStore:
    """Replicated in-memory KV store with a per-key size cap.

    Args:
        db_limit_bytes: Maximum per-key payload size (Algorithm 1 line 5
            compares ``ckpt_data`` against this).  Ignite-style stores cap
            entry sizes well below total memory.
        capacity_bytes: Total in-memory capacity across the cluster.
        replicated: Replicated caching mode — data survives node loss.
        persistent: Native persistence — data survives node loss even if
            not replicated.
    """

    def __init__(
        self,
        *,
        db_limit_bytes: float = 64 * MiB,
        capacity_bytes: float = float("inf"),
        replicated: bool = True,
        persistent: bool = True,
    ) -> None:
        if db_limit_bytes <= 0:
            raise ValueError("db_limit_bytes must be positive")
        self.db_limit_bytes = db_limit_bytes
        self.capacity_bytes = capacity_bytes
        self.replicated = replicated
        self.persistent = persistent
        self._entries: dict[str, KVEntry] = {}
        #: ``(version, key)`` pairs kept sorted at insert time.  Versions
        #: strictly increase, so a put appends; overwrites and deletes
        #: drop the stale pair by bisection.  Prefix queries walk this
        #: index in order instead of sorting per lookup.
        self._versions: list[tuple[int, str]] = []
        self._used = 0.0
        self._version_counter = 0
        self.puts = 0
        self.gets = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def fits(self, size_bytes: float) -> bool:
        """True when a payload of this size respects the per-key limit."""
        return size_bytes <= self.db_limit_bytes

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        value: Any,
        *,
        size_bytes: float,
        now: float = 0.0,
        home_node: Optional[str] = None,
    ) -> KVEntry:
        """Store *value* under *key*, replacing any previous version.

        Raises:
            StorageCapacityError: payload exceeds ``db_limit_bytes`` (the
                caller should spill to a tier instead) or the store is full.
        """
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if not self.fits(size_bytes):
            raise StorageCapacityError(
                f"value for {key!r} is {size_bytes:.0f}B, exceeds per-key "
                f"db_limit of {self.db_limit_bytes:.0f}B"
            )
        previous = self._entries.get(key)
        delta = size_bytes - (previous.size_bytes if previous else 0.0)
        if self._used + delta > self.capacity_bytes:
            raise StorageCapacityError(
                f"KV store full: need {delta:.0f}B more, "
                f"free {self.free_bytes:.0f}B"
            )
        self._version_counter += 1
        entry = KVEntry(
            key=key,
            value=value,
            size_bytes=size_bytes,
            version=self._version_counter,
            written_at=now,
            home_node=home_node,
        )
        self._entries[key] = entry
        if previous is not None:
            self._drop_version(previous)
        self._versions.append((entry.version, key))
        self._used += delta
        self.puts += 1
        return entry

    def _drop_version(self, entry: KVEntry) -> None:
        """Remove *entry*'s pair from the sorted version index."""
        index = bisect.bisect_left(
            self._versions, (entry.version, entry.key)
        )
        if (
            index < len(self._versions)
            and self._versions[index] == (entry.version, entry.key)
        ):
            del self._versions[index]

    def get(self, key: str) -> Optional[KVEntry]:
        self.gets += 1
        return self._entries.get(key)

    def delete(self, key: str) -> bool:
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._drop_version(entry)
        self._used -= entry.size_bytes
        # An empty store reads exactly zero (clamps float residue).
        if not self._entries or self._used < 0.0:
            self._used = 0.0
        self.evictions += 1
        return True

    def keys_with_prefix(self, prefix: str) -> list[str]:
        """All keys starting with *prefix*, sorted by version (oldest first)."""
        return [
            key for _, key in self._versions if key.startswith(prefix)
        ]

    def entries_with_prefix(self, prefix: str) -> list[KVEntry]:
        return [
            self._entries[key]
            for _, key in self._versions
            if key.startswith(prefix)
        ]

    # ------------------------------------------------------------------
    # Failure semantics
    # ------------------------------------------------------------------
    def on_node_failure(self, node_id: str) -> list[str]:
        """Apply Ignite failure semantics when *node_id* dies.

        With replication or persistence every entry survives.  Otherwise
        entries whose primary copy lived on the failed node are dropped.
        Returns the list of lost keys.
        """
        if self.replicated or self.persistent:
            return []
        lost = [
            key
            for key, entry in self._entries.items()
            if entry.home_node == node_id
        ]
        for key in lost:
            self.delete(key)
        return lost

    def clear(self) -> None:
        self._entries.clear()
        self._versions.clear()
        self._used = 0.0
