"""Checkpoint placement: KV store first, spill to tiers when too large.

Implements the storage side of Algorithm 1: checkpoint payloads that fit the
KV per-key limit go to the KV store; larger payloads go to the fastest tier
with room (``ckpt_data -> disk``) and only a *reference* is recorded.  The
router also answers "how long does writing/reading this checkpoint take",
which the simulator charges as ``ckp_i`` and part of ``t_res``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.storage.kvstore import KeyValueStore
from repro.storage.tiers import StorageTier, TierRegistry


@dataclass(frozen=True)
class StoredObjectRef:
    """Where a checkpoint payload physically lives.

    ``tier_name == "kv"`` means the payload is inline in the KV store;
    anything else is a spilled object whose *location* (name + tier) was
    pushed to the database instead of the data (Algorithm 1 line 7).
    """

    key: str
    tier_name: str
    size_bytes: float
    node_id: Optional[str]  # writing node; relevant for non-shared tiers

    @property
    def inline(self) -> bool:
        return self.tier_name == "kv"


class CheckpointStorageRouter:
    """Routes checkpoint payloads between the KV store and spill tiers."""

    def __init__(
        self,
        kv: KeyValueStore,
        tiers: TierRegistry,
        *,
        require_shared_spill: bool = False,
        custom_endpoint: Optional[str] = None,
    ) -> None:
        """
        Args:
            kv: The cluster KV store.
            tiers: Deployment-phase tier hierarchy.
            require_shared_spill: Force spills onto cluster-visible tiers so
                checkpoints survive node failures (used by the scaling
                experiments with node-level failure injection).
            custom_endpoint: Name of a tier that overrides the hierarchy
                (e.g. ``"s3"``), matching the custom-endpoint override of
                §IV-C-4.
        """
        self.kv = kv
        self.tiers = tiers
        self.require_shared_spill = require_shared_spill
        self.custom_endpoint = custom_endpoint
        if custom_endpoint is not None:
            tiers.get(custom_endpoint)  # validate eagerly
        self._spilled: dict[str, StoredObjectRef] = {}
        #: writes that would have landed in the KV store but spilled to the
        #: next healthy tier because the KV store was refusing (brownout)
        self.brownout_spills = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def choose_tier(self, size_bytes: float) -> StorageTier:
        """Tier that a payload of *size_bytes* would land on."""
        if self.custom_endpoint is not None:
            return self.tiers.get(self.custom_endpoint)
        if self.kv.fits(size_bytes) and not self.tiers.is_refusing("kv"):
            return self.tiers.get("kv")
        return self.tiers.fastest_spill_tier(
            size_bytes, require_shared=self.require_shared_spill
        )

    def write(
        self,
        key: str,
        payload: Any,
        *,
        size_bytes: float,
        now: float = 0.0,
        node_id: Optional[str] = None,
    ) -> tuple[StoredObjectRef, float]:
        """Store a checkpoint payload; return its ref and the write time."""
        tier = self.choose_tier(size_bytes)
        if (
            tier.name != "kv"
            and self.custom_endpoint is None
            and self.kv.fits(size_bytes)
        ):
            # Graceful degradation: the KV store would have taken this
            # payload but is browned out, so it spilled to the next tier.
            self.brownout_spills += 1
        if tier.name == "kv":
            self.kv.put(
                key, payload, size_bytes=size_bytes, now=now, home_node=node_id
            )
            ref = StoredObjectRef(key, "kv", size_bytes, node_id)
        else:
            self.tiers.allocate(tier.name, size_bytes)
            ref = StoredObjectRef(key, tier.name, size_bytes, node_id)
            self._spilled[key] = ref
            # Only the (name, location) pair goes to the KV store/database.
            self.kv.put(
                key,
                {"ckpt_name": key, "ckpt_loc": tier.name},
                size_bytes=256.0,
                now=now,
                home_node=node_id,
            )
        return ref, self.tiers.write_seconds(tier, size_bytes)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def read_time(self, ref: StoredObjectRef) -> float:
        """Seconds to fetch the payload behind *ref*."""
        return self.tiers.read_seconds(
            self.tiers.get(ref.tier_name), ref.size_bytes
        )

    def delete(self, ref: StoredObjectRef) -> None:
        """Drop a stored payload (checkpoint retention eviction)."""
        self.kv.delete(ref.key)
        if not ref.inline and ref.key in self._spilled:
            self.tiers.release(ref.tier_name, ref.size_bytes)
            del self._spilled[ref.key]

    # ------------------------------------------------------------------
    # Failure semantics
    # ------------------------------------------------------------------
    def on_node_failure(self, node_id: str) -> list[str]:
        """Drop payloads that lived only on the failed node.

        Returns the keys of lost checkpoints (the recovery path must fall
        back to an older surviving checkpoint or a full restart).
        """
        lost = list(self.kv.on_node_failure(node_id))
        for key, ref in list(self._spilled.items()):
            tier = self.tiers.get(ref.tier_name)
            if not tier.survives_node_failure and ref.node_id == node_id:
                self.tiers.release(ref.tier_name, ref.size_bytes)
                del self._spilled[key]
                self.kv.delete(key)
                lost.append(key)
        return lost

    def is_available(self, ref: StoredObjectRef) -> bool:
        """True while the payload behind *ref* can still be fetched."""
        if ref.inline:
            return ref.key in self.kv
        return ref.key in self._spilled
