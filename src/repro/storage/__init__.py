"""Storage substrate: tier hierarchy + Ignite-like replicated KV store.

Checkpoints live primarily in the in-memory KV store (Apache Ignite in the
paper).  When a checkpoint exceeds the per-key ``db_limit`` it spills to the
fastest available tier (PMem → Ramdisk → NFS → object store), and only the
checkpoint *location* is pushed to the database (Algorithm 1, lines 5–8).
"""

from repro.storage.kvstore import KeyValueStore, KVEntry
from repro.storage.router import CheckpointStorageRouter, StoredObjectRef
from repro.storage.tiers import (
    DEFAULT_TIERS,
    StorageTier,
    TierRegistry,
)

__all__ = [
    "CheckpointStorageRouter",
    "DEFAULT_TIERS",
    "KVEntry",
    "KeyValueStore",
    "StorageTier",
    "StoredObjectRef",
    "TierRegistry",
]
