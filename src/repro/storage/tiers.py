"""Storage tier latency/bandwidth models.

The paper's testbed exposes a hierarchy (§IV-C-4, §V-C-1): the Ignite
in-memory KV store, Intel Optane PMem in AppDirect mode, Ramdisk, NFS shared
storage over 10 GbE, and optionally an S3-like external endpoint.  Each tier
is modeled as ``latency + size / bandwidth`` with published-order-of-magnitude
constants.  What matters for the reproduction is the *relative* cost of
writing/restoring checkpoints of different sizes to different tiers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import StorageCapacityError
from repro.common.units import GiB, MiB


@dataclass(frozen=True)
class StorageTier:
    """One storage tier.

    Attributes:
        name: Tier identifier used by checkpoint records.
        read_latency_s / write_latency_s: Fixed per-operation latency.
        read_bandwidth / write_bandwidth: Bytes per second of streaming I/O.
        shared: Visible from every node (NFS, S3, replicated KV).  Checkpoints
            on non-shared tiers are lost with their node.
        survives_node_failure: Data outlives the writing node's crash.
        capacity_bytes: Total capacity (``float('inf')`` for unbounded).
    """

    name: str
    read_latency_s: float
    write_latency_s: float
    read_bandwidth: float
    write_bandwidth: float
    shared: bool
    survives_node_failure: bool
    capacity_bytes: float = float("inf")

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError(
                f"tier {self.name!r}: bandwidths must be positive "
                f"(got read={self.read_bandwidth}, "
                f"write={self.write_bandwidth})"
            )
        if self.read_latency_s < 0 or self.write_latency_s < 0:
            raise ValueError(
                f"tier {self.name!r}: latencies must be non-negative "
                f"(got read={self.read_latency_s}, "
                f"write={self.write_latency_s})"
            )
        if self.capacity_bytes < 0:
            raise ValueError(
                f"tier {self.name!r}: capacity_bytes must be non-negative "
                f"(got {self.capacity_bytes})"
            )

    def read_time(self, size_bytes: float) -> float:
        """Seconds to read *size_bytes* from this tier."""
        return self.read_latency_s + size_bytes / self.read_bandwidth

    def write_time(self, size_bytes: float) -> float:
        """Seconds to write *size_bytes* to this tier."""
        return self.write_latency_s + size_bytes / self.write_bandwidth


def _default_tiers() -> tuple[StorageTier, ...]:
    """The deployment-phase hierarchy of §IV-C-4, fastest first."""
    return (
        # Apache Ignite replicated cache: memory-speed but pays replication
        # on the write path (10 GbE), so write bandwidth is network-bound.
        StorageTier(
            name="kv",
            read_latency_s=0.0005,
            write_latency_s=0.001,
            read_bandwidth=4.0 * GiB,
            write_bandwidth=1.1 * GiB,  # ~10 GbE with replication overhead
            shared=True,
            survives_node_failure=True,
        ),
        # Intel Optane PMem, AppDirect mode (node-local).
        StorageTier(
            name="pmem",
            read_latency_s=0.0003,
            write_latency_s=0.0005,
            read_bandwidth=6.0 * GiB,
            write_bandwidth=2.0 * GiB,
            shared=False,
            survives_node_failure=False,
        ),
        # Ramdisk (node-local, volatile).
        StorageTier(
            name="ramdisk",
            read_latency_s=0.0002,
            write_latency_s=0.0002,
            read_bandwidth=8.0 * GiB,
            write_bandwidth=8.0 * GiB,
            shared=False,
            survives_node_failure=False,
        ),
        # NFS shared storage over 10 GbE.
        StorageTier(
            name="nfs",
            read_latency_s=0.003,
            write_latency_s=0.005,
            read_bandwidth=0.9 * GiB,
            write_bandwidth=0.8 * GiB,
            shared=True,
            survives_node_failure=True,
        ),
        # External S3-like object store (custom endpoint override).
        StorageTier(
            name="s3",
            read_latency_s=0.030,
            write_latency_s=0.050,
            read_bandwidth=200.0 * MiB,
            write_bandwidth=150.0 * MiB,
            shared=True,
            survives_node_failure=True,
        ),
    )


DEFAULT_TIERS: tuple[StorageTier, ...] = _default_tiers()


class TierRegistry:
    """Orders tiers and tracks per-tier usage.

    The registry is the "storage hierarchy determined at the deployment
    phase" (§IV-C-4); a custom endpoint can be appended or substituted.
    """

    def __init__(self, tiers: tuple[StorageTier, ...] = DEFAULT_TIERS) -> None:
        if not tiers:
            raise ValueError("at least one storage tier is required")
        names = [t.name for t in tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        self.tiers = tuple(tiers)
        self._by_name = {t.name: t for t in tiers}
        self.used_bytes: dict[str, float] = {t.name: 0.0 for t in tiers}
        self._allocations: dict[str, int] = {t.name: 0 for t in tiers}
        # Brownout state (gray-failure chaos layer): a tier can temporarily
        # refuse new I/O or inflate its latency by a multiplier.
        self._refusing: set[str] = set()
        self._latency_multiplier: dict[str, float] = {}

    def get(self, name: str) -> StorageTier:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown storage tier {name!r}; "
                f"known: {sorted(self._by_name)}"
            ) from None

    def free_bytes(self, name: str) -> float:
        tier = self.get(name)
        return tier.capacity_bytes - self.used_bytes[name]

    def allocate(self, name: str, size_bytes: float) -> None:
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self.free_bytes(name) < size_bytes:
            raise StorageCapacityError(
                f"tier {name!r} full: need {size_bytes:.0f}B, "
                f"free {self.free_bytes(name):.0f}B"
            )
        self.used_bytes[name] += size_bytes
        self._allocations[name] += 1

    def release(self, name: str, size_bytes: float) -> None:
        self.get(name)  # validate tier name
        if self._allocations[name] > 0:
            self._allocations[name] -= 1
        remaining = self.used_bytes[name] - size_bytes
        # An empty tier reads exactly zero; float residue from repeated
        # add/subtract cycles must not accumulate.
        if self._allocations[name] == 0 or remaining < 0.0:
            self.used_bytes[name] = 0.0
        else:
            self.used_bytes[name] = remaining

    # ------------------------------------------------------------------
    # Brownouts (gray-failure chaos layer)
    # ------------------------------------------------------------------
    def set_brownout(
        self,
        name: str,
        *,
        refuse: bool = False,
        latency_multiplier: float = 1.0,
    ) -> None:
        """Degrade tier *name*: refuse new I/O and/or inflate latency."""
        self.get(name)
        if latency_multiplier < 1.0:
            raise ValueError("latency_multiplier must be >= 1")
        if refuse:
            self._refusing.add(name)
        else:
            self._refusing.discard(name)
        if latency_multiplier != 1.0:
            self._latency_multiplier[name] = latency_multiplier
        else:
            self._latency_multiplier.pop(name, None)

    def clear_brownout(self, name: str) -> None:
        self.get(name)
        self._refusing.discard(name)
        self._latency_multiplier.pop(name, None)

    def is_refusing(self, name: str) -> bool:
        return name in self._refusing

    def read_seconds(self, tier: StorageTier, size_bytes: float) -> float:
        """Tier read time with any active brownout inflation applied."""
        base = tier.read_time(size_bytes)
        multiplier = self._latency_multiplier.get(tier.name)
        return base if multiplier is None else base * multiplier

    def write_seconds(self, tier: StorageTier, size_bytes: float) -> float:
        """Tier write time with any active brownout inflation applied."""
        base = tier.write_time(size_bytes)
        multiplier = self._latency_multiplier.get(tier.name)
        return base if multiplier is None else base * multiplier

    def fastest_spill_tier(
        self,
        size_bytes: float,
        *,
        require_shared: bool = False,
        skip_refusing: bool = True,
    ) -> StorageTier:
        """First tier after the KV store able to take *size_bytes*.

        Tiers are tried in declaration order (fastest first).  With
        ``require_shared`` only cluster-visible tiers qualify — used when a
        checkpoint must survive node failures (fig. 11 experiments).
        Browned-out (refusing) tiers are skipped; if *every* candidate is
        refusing, the search degrades to include them rather than fail —
        a slow write beats a lost checkpoint.
        """
        refusing = self._refusing if skip_refusing else ()
        for tier in self.tiers[1:]:
            if tier.name in refusing:
                continue
            if require_shared and not tier.shared:
                continue
            if self.free_bytes(tier.name) >= size_bytes:
                return tier
        if refusing:
            return self.fastest_spill_tier(
                size_bytes,
                require_shared=require_shared,
                skip_refusing=False,
            )
        raise StorageCapacityError(
            f"no spill tier can take {size_bytes:.0f}B "
            f"(require_shared={require_shared})"
        )
