"""Replica placement rules (§IV-C-5-b).

"The first replica is placed on any worker that hosts the job function.
Further replicas are placed away from the worker hosting the first replica
to avoid a single point of failure … placement decisions are locality aware
and take into account the location of worker nodes in the data center."
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node


class ReplicaPlacer:
    """Chooses nodes for new runtime replicas."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def choose_node(
        self,
        *,
        memory_bytes: float,
        function_nodes: Sequence[Node],
        existing_replica_nodes: Sequence[Node],
    ) -> Optional[Node]:
        """Pick the node for the next replica.

        Rule 1 — the *first* replica co-locates with a worker hosting one of
        the job's functions (warm locality: adopting it avoids cross-node
        state movement).

        Rule 2 — subsequent replicas move *away*: maximize topology distance
        from existing replicas (different rack first, different node second),
        avoiding a single point of failure.

        Ties break toward faster, emptier nodes for minimal recovery time on
        heterogeneous resources.
        """
        candidates = self.cluster.hosting_candidates(memory_bytes)
        if not candidates:
            return None

        if not existing_replica_nodes:
            hosting_ids = {n.node_id for n in function_nodes if n.alive}
            co_located = [c for c in candidates if c.node_id in hosting_ids]
            pool = co_located or candidates
            return max(
                pool,
                key=lambda n: (n.profile.speed_factor, n.slots_free, -n.index),
            )

        # The topology's distance is coarse (same node < same rack <
        # cross rack), so the minimum over the replica set collapses to
        # two membership tests.  Precomputing the sets keeps placement
        # O(candidates + replicas) instead of O(candidates × replicas),
        # which matters when open-loop traffic keeps hundreds of
        # replicas alive on large clusters.
        topo = self.cluster.topology
        replica_ids = {other.node_id for other in existing_replica_nodes}
        replica_racks = {other.rack for other in existing_replica_nodes}

        def min_distance(candidate: Node) -> int:
            if candidate.node_id in replica_ids:
                return topo.SAME_NODE
            if candidate.rack in replica_racks:
                return topo.SAME_RACK
            return topo.CROSS_RACK

        return max(
            candidates,
            key=lambda n: (
                min_distance(n),            # farthest from existing replicas
                n.profile.speed_factor,
                n.slots_free,
                -n.index,
            ),
        )

    def spread_score(self, nodes: Iterable[Node]) -> float:
        """Diagnostic: mean pairwise topology distance of a replica set."""
        nodes = list(nodes)
        if len(nodes) < 2:
            return 0.0
        topo = self.cluster.topology
        total = 0
        pairs = 0
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                total += topo.distance(a.rack, a.node_id, b.rack, b.node_id)
                pairs += 1
        return total / pairs
