"""Replica placement rules (§IV-C-5-b).

"The first replica is placed on any worker that hosts the job function.
Further replicas are placed away from the worker hosting the first replica
to avoid a single point of failure … placement decisions are locality aware
and take into account the location of worker nodes in the data center."

Since the S39 policy layer, the locality/anti-affinity decision itself
lives in :class:`~repro.policies.builtin.LocalityPolicy` (the default,
byte-identical to the rules that used to be inlined here); the placer owns
the candidate filtering and the spread diagnostic, and delegates the
ranking to whichever policy the platform selected.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.policies.base import PlacementPolicy
from repro.policies.builtin import LocalityPolicy


class ReplicaPlacer:
    """Chooses nodes for new runtime replicas."""

    def __init__(
        self, cluster: Cluster, policy: Optional[PlacementPolicy] = None
    ) -> None:
        self.cluster = cluster
        self.policy = policy if policy is not None else LocalityPolicy()
        self.policy.bind(cluster=cluster)

    def choose_node(
        self,
        *,
        memory_bytes: float,
        function_nodes: Sequence[Node],
        existing_replica_nodes: Sequence[Node],
    ) -> Optional[Node]:
        """Pick the node for the next replica.

        Default (locality) rules — Rule 1: the *first* replica co-locates
        with a worker hosting one of the job's functions (warm locality:
        adopting it avoids cross-node state movement).  Rule 2: subsequent
        replicas move *away*, maximizing topology distance from existing
        replicas (different rack first, different node second) to avoid a
        single point of failure, with ties toward faster, emptier nodes.
        Non-default policies substitute their own objective.
        """
        candidates = self.cluster.hosting_candidates(memory_bytes)
        if not candidates:
            return None
        return self.policy.select_replica_node(
            candidates,
            function_nodes=function_nodes,
            existing_replica_nodes=existing_replica_nodes,
        )

    def spread_score(self, nodes: Iterable[Node]) -> float:
        """Diagnostic: mean pairwise topology distance of a replica set."""
        nodes = list(nodes)
        if len(nodes) < 2:
            return 0.0
        topo = self.cluster.topology
        total = 0
        pairs = 0
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                total += topo.distance(a.rack, a.node_id, b.rack, b.node_id)
                pairs += 1
        return total / pairs
