"""Replication Module (§IV-C-5, Algorithm 2).

Replicates the runtimes used by scheduled jobs so failed functions can
resume in a warm container, with three replica-count strategies (dynamic,
aggressive, lenient — §V-D-4) and locality-aware anti-affinity placement.
"""

from repro.replication.estimator import FailureRateEstimator
from repro.replication.module import ReplicationModule
from repro.replication.placement import ReplicaPlacer
from repro.replication.strategies import (
    AggressiveReplication,
    DynamicReplication,
    LenientReplication,
    ReplicationStrategy,
    make_replication_strategy,
)

__all__ = [
    "AggressiveReplication",
    "DynamicReplication",
    "FailureRateEstimator",
    "LenientReplication",
    "ReplicaPlacer",
    "ReplicationModule",
    "ReplicationStrategy",
    "make_replication_strategy",
]
