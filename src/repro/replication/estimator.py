"""On-line failure-rate estimation for dynamic replication.

Dynamic replication "adjusts the replication factor based on the failure
rate" (§V-D-4).  The estimator blends a Bayesian-style prior with the
observed failure fraction so the factor is sane before any outcome has been
seen and converges to the empirical rate as evidence accumulates.
"""

from __future__ import annotations


class FailureRateEstimator:
    """Beta-prior estimate of the per-function failure probability.

    Args:
        prior_rate: Assumed failure rate before observations.
        prior_strength: Pseudo-observation count behind the prior; larger
            values make the estimate slower to move.
    """

    def __init__(
        self, *, prior_rate: float = 0.05, prior_strength: float = 10.0
    ) -> None:
        if not 0.0 <= prior_rate <= 1.0:
            raise ValueError("prior_rate must be within [0, 1]")
        if prior_strength <= 0:
            raise ValueError("prior_strength must be positive")
        self.prior_rate = prior_rate
        self.prior_strength = prior_strength
        self.failures = 0
        self.successes = 0

    def record_failure(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.failures += count

    def record_success(self, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self.successes += count

    @property
    def observations(self) -> int:
        return self.failures + self.successes

    @property
    def rate(self) -> float:
        """Posterior-mean failure rate in [0, 1]."""
        pseudo_failures = self.prior_rate * self.prior_strength
        total = self.observations + self.prior_strength
        return (self.failures + pseudo_failures) / total

    def reset(self) -> None:
        self.failures = 0
        self.successes = 0
