"""The Replication Module: Algorithm 2 over the live platform.

At job submission (and after every event that changes the picture — a
function completing, a replica being claimed for recovery, a replica dying
with its node) the module recomputes, per runtime, how many replicas should
exist, compares with the live pool, and launches or retires replicas to
match.  Placement follows :class:`~repro.replication.placement.ReplicaPlacer`.
"""

from __future__ import annotations

from collections import Counter
from itertools import count
from typing import TYPE_CHECKING, Optional

from repro.common.types import ContainerState, RuntimeKind
from repro.core.ids import IdGenerator
from repro.faas.container import Container, ContainerPurpose
from repro.faas.controller import ContainerRequest, FaaSController
from repro.replication.estimator import FailureRateEstimator
from repro.replication.placement import ReplicaPlacer
from repro.replication.strategies import ReplicationStrategy
from repro.runtime_manager.manager import RuntimeManagerModule
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.jobs import Job


class ReplicationModule:
    """Maintains the warm-replica pools that back fast recovery."""

    def __init__(
        self,
        sim: Simulator,
        controller: FaaSController,
        runtime_manager: RuntimeManagerModule,
        placer: ReplicaPlacer,
        strategy: ReplicationStrategy,
        ids: IdGenerator,
        *,
        estimator: Optional[FailureRateEstimator] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.runtime_manager = runtime_manager
        self.placer = placer
        self.strategy = strategy
        self.ids = ids
        self.estimator = estimator or FailureRateEstimator()
        self._jobs: dict[str, "Job"] = {}
        # kind -> Counter[(mean_exec_s, remaining)] — registered jobs
        # grouped by the only two per-job inputs the strategy target
        # depends on.  Summing ``count × target`` over groups is integer-
        # identical to the per-job loop, but costs O(groups) per
        # reconcile instead of O(jobs): with 10^3 concurrent single-
        # function jobs there are ~2 groups, not 10^3 terms.
        self._groups: dict[RuntimeKind, Counter] = {}
        # job_id -> (kind, group key) as last folded into ``_groups``
        self._job_group: dict[str, tuple[RuntimeKind, tuple[float, int]]] = {}
        # kind -> {launch token: in-flight replica cold start}.  Every
        # exit from the in-flight state is hooked — warm (``_ready``),
        # cancelled (``_retire_surplus``), lost mid-start (container-loss
        # fanout via ``_token_by_container``) — so ``len()`` IS the
        # in-flight count and reconciles never scan the set.  With the
        # cluster saturated by open-loop traffic, hundreds of replica
        # starts queue up at once; scanning them per reconcile was
        # quadratic in concurrency.
        self._pending: dict[RuntimeKind, dict[int, ContainerRequest]] = {}
        self._pending_seq = count()
        # container_id -> launch token, for the loss-fanout removal path.
        self._token_by_container: dict[str, int] = {}
        self.replicas_launched = 0
        self.replicas_retired = 0
        #: Extra warm replicas on top of each kind's base target while the
        #: S40 adaptive controller holds a protective stance; 0 (default)
        #: keeps targets byte-identical to the static platform.
        self.target_boost = 0
        runtime_manager.on_replica_claimed(self._handle_claim)
        controller.on_container_loss(self._handle_container_loss)
        # Keep the manager's incremental warm-idle tally in step with the
        # scan semantics across a node death: dead-node replicas must
        # leave the count before the first container-loss reconcile runs.
        controller.on_node_failure_begin(
            lambda node: runtime_manager.note_node_dead(node.node_id)
        )

    # ------------------------------------------------------------------
    # Job registration
    # ------------------------------------------------------------------
    def register_job(self, job: "Job") -> None:
        self._jobs[job.job_id] = job
        self._track(job)
        self.reconcile(job.workload.runtime)

    def complete_job(self, job: "Job") -> None:
        self._jobs.pop(job.job_id, None)
        self._untrack(job.job_id)
        self.reconcile(job.workload.runtime)

    # ------------------------------------------------------------------
    # Group bookkeeping (incremental view of the per-job target inputs)
    # ------------------------------------------------------------------
    @staticmethod
    def _group_key(job: "Job") -> tuple[float, int]:
        return (job.workload.mean_exec_s, job.remaining())

    def _track(self, job: "Job") -> None:
        kind = job.workload.runtime
        key = self._group_key(job)
        self._groups.setdefault(kind, Counter())[key] += 1
        self._job_group[job.job_id] = (kind, key)

    def _untrack(self, job_id: str) -> None:
        entry = self._job_group.pop(job_id, None)
        if entry is None:
            return
        kind, key = entry
        counter = self._groups[kind]
        counter[key] -= 1
        if counter[key] <= 0:
            del counter[key]

    def _refresh(self, job: "Job") -> None:
        """Re-bucket a job whose ``remaining()`` may have moved."""
        entry = self._job_group.get(job.job_id)
        if entry is None:
            return
        key = self._group_key(job)
        if entry[1] != key:
            self._untrack(job.job_id)
            self._track(job)

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def target_for_kind(
        self, kind: RuntimeKind, *, active_replicas: Optional[int] = None
    ) -> int:
        """Σ over registered jobs using *kind* of the strategy's target.

        Evaluated over the ``(mean_exec_s, remaining)`` groups rather than
        job by job; ``active_replicas`` is loop-invariant so the warm-pool
        scan happens once per call, not once per job (callers that already
        hold the count pass it in to skip the scan entirely).
        """
        total = 0
        runtime = self.controller.runtimes.get(kind)
        # Replacing a consumed replica takes roughly a cold start plus the
        # failure-detection lag; that is the window the pool must cover.
        window = runtime.cold_start_s
        active = (
            self.runtime_manager.replica_count(kind)
            if active_replicas is None
            else active_replicas
        )
        for (mean_exec_s, remaining), count in self._groups.get(
            kind, {}
        ).items():
            total += count * self.strategy.target_replicas(
                total_functions=remaining,
                active_replicas=active,
                estimator=self.estimator,
                mean_function_duration_s=mean_exec_s,
                replacement_window_s=window,
            )
        if total > 0 and self.target_boost:
            # Boost only an already-live pool: an idle platform (target 0)
            # keeps zero replicas so the retire-all path still drains.
            total += self.target_boost
        return total

    def set_target_boost(self, boost: int) -> None:
        """Retune the replica boost and re-reconcile every live pool."""
        if boost < 0:
            raise ValueError("boost must be >= 0")
        if boost == self.target_boost:
            return
        self.target_boost = boost
        for kind in list(self._groups):
            self.reconcile(kind)

    @staticmethod
    def _is_inflight(request: ContainerRequest) -> bool:
        """A replica request that has not yet produced a warm replica."""
        if request.cancelled:
            return False
        container = request.container
        if container is None:
            return True  # still queued at the controller
        if container.terminal:
            return False
        return container.state in (
            ContainerState.PENDING,
            ContainerState.LAUNCHING,
            ContainerState.INITIALIZING,
        )

    def current_for_kind(self, kind: RuntimeKind) -> int:
        """Warm replicas + in-flight replica cold starts."""
        return self.runtime_manager.replica_count(kind) + len(
            self._pending.get(kind, ())
        )

    def reconcile(self, kind: RuntimeKind) -> None:
        """Launch or retire replicas so the pool matches the target.

        Mirrors Algorithm 2: compute ``func_total`` and ``rep_req`` for each
        scheduled runtime; when the current replication factor falls short of
        the required one, determine ``rep_loc`` and launch; when the pool
        exceeds the target (jobs finished), retire the surplus.
        """
        active = self.runtime_manager.replica_count(kind)
        target = self.target_for_kind(kind, active_replicas=active)
        current = active + len(self._pending.get(kind, ()))
        if current < target:
            for _ in range(target - current):
                if not self._launch_replica(kind):
                    break
        elif target == 0 and current > 0:
            self._retire_surplus(kind, current)
        elif current > max(target + 1, int(target * 1.5)):
            # Hysteresis: keep a modest surplus rather than churning
            # launch/retire cycles as the failure-rate estimate moves.
            self._retire_surplus(kind, current - target)

    def _job_for_kind(self, kind: RuntimeKind) -> Optional["Job"]:
        for job in self._jobs.values():
            if job.workload.runtime == kind:
                return job
        return None

    def _launch_replica(self, kind: RuntimeKind) -> bool:
        job = self._job_for_kind(kind)
        runtime = self.controller.runtimes.get(kind)
        memory = job.request.function_memory_bytes if job else runtime.memory_bytes
        function_nodes = self.controller.function_hosting_nodes(kind)
        existing = self.runtime_manager.replica_locations(kind)
        node = self.placer.choose_node(
            memory_bytes=memory,
            function_nodes=function_nodes,
            existing_replica_nodes=existing,
        )
        if node is None:
            return False
        job_id = job.job_id if job else ""
        replica_id = self.ids.replica_id()
        token = next(self._pending_seq)

        def _placed(container: Container) -> None:
            self._token_by_container[container.container_id] = token

        def _ready(container: Container) -> None:
            # Leave the in-flight set the moment the replica turns warm;
            # from here on ``replica_count`` accounts for it.
            self._pending.get(kind, {}).pop(token, None)
            self._token_by_container.pop(container.container_id, None)
            self.runtime_manager.register_replica(container, job_id, replica_id)

        request = ContainerRequest(
            kind=kind,
            purpose=ContainerPurpose.REPLICA,
            on_placed=_placed,
            on_ready=_ready,
            memory_bytes=memory,
            preferred_node=node.node_id,
            warm=True,
        )
        self.controller.submit(request)
        self._pending.setdefault(kind, {})[token] = request
        self.replicas_launched += 1
        return True

    def _retire_surplus(self, kind: RuntimeKind, surplus: int) -> None:
        # Cancel pending launches first (cheapest), then kill idle
        # replicas.  Most-recent launch first, matching the order the
        # purged in-flight list used to pop from its tail; entries that
        # already stopped being in-flight are dropped without counting.
        pending = self._pending.get(kind, {})
        while surplus > 0 and pending:
            token = next(reversed(pending))
            request = pending.pop(token)
            if not self._is_inflight(request):
                continue
            request.cancel()
            if request.container is not None:
                self._token_by_container.pop(
                    request.container.container_id, None
                )
                if not request.container.terminal:
                    self.controller.terminate(
                        request.container, ContainerState.KILLED
                    )
            surplus -= 1
            self.replicas_retired += 1
        if surplus <= 0:
            return
        for container in self.runtime_manager.warm_replicas(kind):
            if surplus <= 0:
                break
            self.runtime_manager.unregister_replica(container)
            self.controller.terminate(container, ContainerState.KILLED)
            surplus -= 1
            self.replicas_retired += 1

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_claim(self, kind: RuntimeKind, job_id: str) -> None:
        """A replica was consumed by recovery → restore pool depth.

        §IV-C-5: "Once a replica is assigned to a failed function, the
        Runtime Manager Module creates a new replica if an active function is
        deployed with the same runtime."
        """
        self.reconcile(kind)

    def _handle_container_loss(self, container: Container, reason: str) -> None:
        if container.purpose != ContainerPurpose.REPLICA:
            return
        token = self._token_by_container.pop(container.container_id, None)
        if token is not None:
            # Died mid cold start: drop it from the in-flight set.
            self._pending.get(container.kind, {}).pop(token, None)
        self.runtime_manager.unregister_replica(container)
        self.reconcile(container.kind)

    # ------------------------------------------------------------------
    # Failure-rate feedback (driven by the Core Module)
    # ------------------------------------------------------------------
    def observe_function_failure(self, kind: RuntimeKind) -> None:
        self.estimator.record_failure()
        self.reconcile(kind)

    def observe_function_success(
        self, kind: RuntimeKind, job: Optional["Job"] = None
    ) -> None:
        """A function completed; its job's ``remaining()`` just dropped."""
        if job is not None:
            self._refresh(job)
        self.estimator.record_success()
