"""The Replication Module: Algorithm 2 over the live platform.

At job submission (and after every event that changes the picture — a
function completing, a replica being claimed for recovery, a replica dying
with its node) the module recomputes, per runtime, how many replicas should
exist, compares with the live pool, and launches or retires replicas to
match.  Placement follows :class:`~repro.replication.placement.ReplicaPlacer`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.types import ContainerState, RuntimeKind
from repro.core.ids import IdGenerator
from repro.faas.container import Container, ContainerPurpose
from repro.faas.controller import ContainerRequest, FaaSController
from repro.replication.estimator import FailureRateEstimator
from repro.replication.placement import ReplicaPlacer
from repro.replication.strategies import ReplicationStrategy
from repro.runtime_manager.manager import RuntimeManagerModule
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.jobs import Job


class ReplicationModule:
    """Maintains the warm-replica pools that back fast recovery."""

    def __init__(
        self,
        sim: Simulator,
        controller: FaaSController,
        runtime_manager: RuntimeManagerModule,
        placer: ReplicaPlacer,
        strategy: ReplicationStrategy,
        ids: IdGenerator,
        *,
        estimator: Optional[FailureRateEstimator] = None,
    ) -> None:
        self.sim = sim
        self.controller = controller
        self.runtime_manager = runtime_manager
        self.placer = placer
        self.strategy = strategy
        self.ids = ids
        self.estimator = estimator or FailureRateEstimator()
        self._jobs: dict[str, "Job"] = {}
        # kind -> in-flight replica cold starts
        self._pending: dict[RuntimeKind, list[ContainerRequest]] = {}
        self.replicas_launched = 0
        self.replicas_retired = 0
        runtime_manager.on_replica_claimed(self._handle_claim)
        controller.on_container_loss(self._handle_container_loss)

    # ------------------------------------------------------------------
    # Job registration
    # ------------------------------------------------------------------
    def register_job(self, job: "Job") -> None:
        self._jobs[job.job_id] = job
        self.reconcile(job.workload.runtime)

    def complete_job(self, job: "Job") -> None:
        self._jobs.pop(job.job_id, None)
        self.reconcile(job.workload.runtime)

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def target_for_kind(self, kind: RuntimeKind) -> int:
        """Σ over registered jobs using *kind* of the strategy's target."""
        total = 0
        runtime = self.controller.runtimes.get(kind)
        # Replacing a consumed replica takes roughly a cold start plus the
        # failure-detection lag; that is the window the pool must cover.
        window = runtime.cold_start_s
        for job in self._jobs.values():
            if job.workload.runtime != kind:
                continue
            remaining = job.remaining()
            total += self.strategy.target_replicas(
                total_functions=remaining,
                active_replicas=self.runtime_manager.replica_count(kind),
                estimator=self.estimator,
                mean_function_duration_s=job.workload.mean_exec_s,
                replacement_window_s=window,
            )
        return total

    @staticmethod
    def _is_inflight(request: ContainerRequest) -> bool:
        """A replica request that has not yet produced a warm replica."""
        if request.cancelled:
            return False
        container = request.container
        if container is None:
            return True  # still queued at the controller
        if container.terminal:
            return False
        return container.state in (
            ContainerState.PENDING,
            ContainerState.LAUNCHING,
            ContainerState.INITIALIZING,
        )

    def current_for_kind(self, kind: RuntimeKind) -> int:
        """Warm replicas + in-flight replica cold starts."""
        pending = self._pending.get(kind, [])
        pending[:] = [r for r in pending if self._is_inflight(r)]
        return self.runtime_manager.replica_count(kind) + len(pending)

    def reconcile(self, kind: RuntimeKind) -> None:
        """Launch or retire replicas so the pool matches the target.

        Mirrors Algorithm 2: compute ``func_total`` and ``rep_req`` for each
        scheduled runtime; when the current replication factor falls short of
        the required one, determine ``rep_loc`` and launch; when the pool
        exceeds the target (jobs finished), retire the surplus.
        """
        target = self.target_for_kind(kind)
        current = self.current_for_kind(kind)
        if current < target:
            for _ in range(target - current):
                if not self._launch_replica(kind):
                    break
        elif target == 0 and current > 0:
            self._retire_surplus(kind, current)
        elif current > max(target + 1, int(target * 1.5)):
            # Hysteresis: keep a modest surplus rather than churning
            # launch/retire cycles as the failure-rate estimate moves.
            self._retire_surplus(kind, current - target)

    def _job_for_kind(self, kind: RuntimeKind) -> Optional["Job"]:
        for job in self._jobs.values():
            if job.workload.runtime == kind:
                return job
        return None

    def _launch_replica(self, kind: RuntimeKind) -> bool:
        job = self._job_for_kind(kind)
        runtime = self.controller.runtimes.get(kind)
        memory = job.request.function_memory_bytes if job else runtime.memory_bytes
        function_nodes = [
            c.node
            for c in self.controller.active_containers(ContainerPurpose.FUNCTION)
            if c.kind == kind
        ]
        existing = self.runtime_manager.replica_locations(kind)
        node = self.placer.choose_node(
            memory_bytes=memory,
            function_nodes=function_nodes,
            existing_replica_nodes=existing,
        )
        if node is None:
            return False
        job_id = job.job_id if job else ""
        replica_id = self.ids.replica_id()

        def _ready(container: Container) -> None:
            self.runtime_manager.register_replica(container, job_id, replica_id)

        request = ContainerRequest(
            kind=kind,
            purpose=ContainerPurpose.REPLICA,
            on_ready=_ready,
            memory_bytes=memory,
            preferred_node=node.node_id,
            warm=True,
        )
        self.controller.submit(request)
        self._pending.setdefault(kind, []).append(request)
        self.replicas_launched += 1
        return True

    def _retire_surplus(self, kind: RuntimeKind, surplus: int) -> None:
        # Cancel pending launches first (cheapest), then kill idle replicas.
        pending = self._pending.get(kind, [])
        while surplus > 0 and pending:
            request = pending.pop()
            request.cancel()
            if request.container is not None and not request.container.terminal:
                self.controller.terminate(
                    request.container, ContainerState.KILLED
                )
            surplus -= 1
            self.replicas_retired += 1
        if surplus <= 0:
            return
        for container in self.runtime_manager.warm_replicas(kind):
            if surplus <= 0:
                break
            self.runtime_manager.unregister_replica(container)
            self.controller.terminate(container, ContainerState.KILLED)
            surplus -= 1
            self.replicas_retired += 1

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_claim(self, kind: RuntimeKind, job_id: str) -> None:
        """A replica was consumed by recovery → restore pool depth.

        §IV-C-5: "Once a replica is assigned to a failed function, the
        Runtime Manager Module creates a new replica if an active function is
        deployed with the same runtime."
        """
        self.reconcile(kind)

    def _handle_container_loss(self, container: Container, reason: str) -> None:
        if container.purpose != ContainerPurpose.REPLICA:
            return
        self.runtime_manager.unregister_replica(container)
        self.reconcile(container.kind)

    # ------------------------------------------------------------------
    # Failure-rate feedback (driven by the Core Module)
    # ------------------------------------------------------------------
    def observe_function_failure(self, kind: RuntimeKind) -> None:
        self.estimator.record_failure()
        self.reconcile(kind)

    def observe_function_success(self, kind: RuntimeKind) -> None:
        self.estimator.record_success()
