"""Replica-count strategies: dynamic (DR), aggressive (AR), lenient (LR).

Each strategy answers one question from Algorithm 2: given the total number
of functions using a runtime and the current replica population, how many
replicas *should* exist?  The three policies are compared in Fig. 9:

* **DR** (Canary default) sizes the pool to the expected number of
  concurrent failures (estimated failure rate × running functions).
* **AR** keeps a high fixed fraction of the running functions replicated —
  lowest recovery latency, highest cost.
* **LR** keeps exactly one active replica per job — lowest cost, but
  recovery degrades to cold starts when failures burst.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.common.types import ReplicationStrategyName
from repro.replication.estimator import FailureRateEstimator


class ReplicationStrategy(ABC):
    """Computes the target replica count for one (job, runtime) pair."""

    name: ReplicationStrategyName

    @abstractmethod
    def target_replicas(
        self,
        *,
        total_functions: int,
        active_replicas: int,
        estimator: FailureRateEstimator,
        mean_function_duration_s: float = 60.0,
        replacement_window_s: float = 5.0,
    ) -> int:
        """Desired replica-pool size (``rep_req`` accumulated in Alg. 2).

        ``mean_function_duration_s`` and ``replacement_window_s`` feed the
        dynamic strategy's arrival-rate model; the fixed strategies ignore
        them.
        """

    @staticmethod
    def replication_factor(functions: int, replicas: int) -> float:
        """Replicas per running function (§IV-C-5-a).

        The paper defines the factor as the ratio of functions to replicas;
        we express it replicas-per-function so "higher factor = more
        redundancy" reads naturally.  Zero functions → factor 0.
        """
        if functions <= 0:
            return 0.0
        return replicas / functions


class DynamicReplication(ReplicationStrategy):
    """DR: pool sized to the failure *arrival rate*.

    A claimed replica is replaced within roughly one cold start, so the pool
    only needs to absorb the failures that arrive inside that replacement
    window, not every failure the job will ever see:

    ``λ = rate × functions / mean_duration`` (failures per second), and
    ``target = ceil(λ × window × headroom)``, clamped to
    ``[min_replicas, max_fraction × functions]``.

    This is what puts DR's cost just above LR's single replica at low error
    rates yet lets the pool grow under failure bursts — the optimal operating
    point of §V-D-4/Fig. 9.
    """

    name = ReplicationStrategyName.DYNAMIC

    def __init__(
        self,
        *,
        headroom: float = 1.5,
        min_replicas: int = 1,
        max_fraction: float = 0.5,
    ) -> None:
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        if min_replicas < 0:
            raise ValueError("min_replicas must be non-negative")
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError("max_fraction must be in (0, 1]")
        self.headroom = headroom
        self.min_replicas = min_replicas
        self.max_fraction = max_fraction

    def target_replicas(
        self,
        *,
        total_functions: int,
        active_replicas: int,
        estimator: FailureRateEstimator,
        mean_function_duration_s: float = 60.0,
        replacement_window_s: float = 5.0,
    ) -> int:
        if total_functions <= 0:
            return 0
        duration = max(mean_function_duration_s, 1e-6)
        arrival_rate = estimator.rate * total_functions / duration
        in_flight = arrival_rate * replacement_window_s
        want = math.ceil(in_flight * self.headroom)
        cap = max(
            self.min_replicas, math.ceil(self.max_fraction * total_functions)
        )
        return max(self.min_replicas, min(want, cap))


class AggressiveReplication(ReplicationStrategy):
    """AR: replicate a high fixed fraction of running functions."""

    name = ReplicationStrategyName.AGGRESSIVE

    def __init__(self, *, factor: float = 0.5, min_replicas: int = 2) -> None:
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        if min_replicas < 0:
            raise ValueError("min_replicas must be non-negative")
        self.factor = factor
        self.min_replicas = min_replicas

    def target_replicas(
        self,
        *,
        total_functions: int,
        active_replicas: int,
        estimator: FailureRateEstimator,
        mean_function_duration_s: float = 60.0,
        replacement_window_s: float = 5.0,
    ) -> int:
        if total_functions <= 0:
            return 0
        return max(self.min_replicas, math.ceil(self.factor * total_functions))


class LenientReplication(ReplicationStrategy):
    """LR: one active replica per job, regardless of scale."""

    name = ReplicationStrategyName.LENIENT

    def target_replicas(
        self,
        *,
        total_functions: int,
        active_replicas: int,
        estimator: FailureRateEstimator,
        mean_function_duration_s: float = 60.0,
        replacement_window_s: float = 5.0,
    ) -> int:
        return 1 if total_functions > 0 else 0


def make_replication_strategy(
    name: ReplicationStrategyName | str,
) -> ReplicationStrategy:
    """Factory from enum/string name."""
    name = ReplicationStrategyName(name)
    if name is ReplicationStrategyName.DYNAMIC:
        return DynamicReplication()
    if name is ReplicationStrategyName.AGGRESSIVE:
        return AggressiveReplication()
    if name is ReplicationStrategyName.LENIENT:
        return LenientReplication()
    raise ValueError(f"unknown replication strategy {name!r}")
