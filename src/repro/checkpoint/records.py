"""Checkpoint records: what the database knows about one saved state."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.storage.router import StoredObjectRef


@dataclass
class CheckpointRecord:
    """One saved checkpoint of one function.

    Attributes:
        checkpoint_id: Unique ID minted by the Core Module.
        job_id / function_id: Owning job and function.
        state_index: Index of the last completed state captured.
        size_bytes: Payload size.
        ref: Physical location (inline KV entry or spilled tier object).
        created_at: Virtual time the checkpoint finished writing.
        payload: Actual checkpoint content in the local executor; ``None``
            in the simulator (sizes only).
    """

    checkpoint_id: str
    job_id: str
    function_id: str
    state_index: int
    size_bytes: float
    ref: StoredObjectRef
    created_at: float
    payload: Any = None

    @property
    def location(self) -> str:
        return self.ref.tier_name
