"""Checkpointing Module (§IV-C-4, Algorithm 1).

State and critical-data checkpointing: registers application states, stores
the latest *n* checkpoints per function (n starts at 3 and adapts), routes
payloads between the KV store and spill tiers, and answers restore queries
during recovery.
"""

from repro.checkpoint.module import CheckpointingModule
from repro.checkpoint.policy import CheckpointPolicy, RetentionPolicy
from repro.checkpoint.records import CheckpointRecord

__all__ = [
    "CheckpointPolicy",
    "CheckpointRecord",
    "CheckpointingModule",
    "RetentionPolicy",
]
