"""Checkpoint cadence and retention policies.

Two knobs from the paper:

* **cadence** — implicit checkpointing records every registered state;
  explicit checkpointing lets the application checkpoint every k-th state
  ("reducing the checkpoint size and the associated overhead while
  increasing the programming complexity", §IV-C-4-b).  An adaptive mode
  widens the interval when checkpoint cost dominates state duration.
* **retention** — keep the latest *n* checkpoints in the store; the initial
  value of n is 3 and is "dynamically adjusted throughout the execution
  based on the application data to be checkpointed and the frequency of
  states produced" (§IV-C-4-b).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetentionPolicy:
    """Latest-n retention with the paper's dynamic adjustment.

    Attributes:
        initial_n: Starting retention depth (paper: 3).
        min_n / max_n: Clamp bounds for the dynamic adjustment.
        dynamic: When False, retention stays at ``initial_n``.
    """

    initial_n: int = 3
    min_n: int = 2
    max_n: int = 8
    dynamic: bool = True

    def __post_init__(self) -> None:
        if not (1 <= self.min_n <= self.initial_n <= self.max_n):
            raise ValueError(
                f"need 1 <= min_n <= initial_n <= max_n, got "
                f"{self.min_n}/{self.initial_n}/{self.max_n}"
            )

    def target_n(
        self,
        *,
        checkpoint_size_bytes: float,
        state_period_s: float,
        db_limit_bytes: float,
    ) -> int:
        """Retention depth for a function's (size, frequency) profile.

        Heuristic implementing the paper's description: large payloads that
        spill out of the KV store keep fewer generations (memory pressure);
        small high-frequency states keep more (cheap, and deeper history
        shortens the worst-case redo after cascading failures).
        """
        if not self.dynamic:
            return self.initial_n
        n = self.initial_n
        if checkpoint_size_bytes > db_limit_bytes:
            n -= 1
        if state_period_s < 1.0 and checkpoint_size_bytes <= db_limit_bytes / 8:
            n += 2
        elif state_period_s > 20.0:
            n -= 1
        return max(self.min_n, min(self.max_n, n))


@dataclass(frozen=True)
class CheckpointPolicy:
    """Full checkpointing configuration for a job.

    Attributes:
        enabled: Master switch (off for retry/RR/AS baselines).
        interval: Checkpoint after every ``interval``-th state (1 = implicit
            per-state checkpointing).
        explicit: Explicit user-registered states (affects bookkeeping only;
            the cadence is what matters for timing).
        adaptive_interval: Widen the interval when the measured checkpoint
            cost exceeds ``max_overhead_ratio`` of the state duration.
        max_overhead_ratio: Threshold for the adaptive widening.
        retention: Latest-n retention policy.
        min_interval / max_interval: Clamp bounds for any runtime interval
            override (the S40 adaptive controller tunes within them).
    """

    enabled: bool = True
    interval: int = 1
    explicit: bool = False
    adaptive_interval: bool = False
    max_overhead_ratio: float = 0.5
    retention: RetentionPolicy = RetentionPolicy()
    min_interval: int = 1
    max_interval: int = 64

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.max_overhead_ratio <= 0:
            raise ValueError("max_overhead_ratio must be positive")
        if not 1 <= self.min_interval <= self.max_interval:
            raise ValueError(
                f"need 1 <= min_interval <= max_interval, got "
                f"{self.min_interval}/{self.max_interval}"
            )

    def clamp_interval(self, interval: int) -> int:
        """Clamp a runtime interval override to the policy's bounds."""
        return max(self.min_interval, min(self.max_interval, interval))

    def should_checkpoint(self, state_index: int, effective_interval: int) -> bool:
        """Checkpoint after state *state_index* (0-based)?"""
        if not self.enabled:
            return False
        return (state_index + 1) % max(1, effective_interval) == 0
