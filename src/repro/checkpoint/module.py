"""The Checkpointing Module: Algorithm 1 plus restore queries.

For each registered state the module (Algorithm 1):

1. builds the checkpoint payload (state + critical data, or the
   user-provided explicit checkpoint);
2. routes it — inline into the KV store when it fits ``db_limit``, else
   spilled to the fastest tier with only ``{ckpt_name, ckpt_loc}`` recorded;
3. evicts the oldest checkpoint when the function exceeds its retention
   threshold ``ckpt_thresh`` (latest-n);
4. pushes ``{job_id, fn_id, ckpt_id, ckpt}`` to the database.

Restores return the newest *available* checkpoint — a checkpoint whose
payload died with a node (non-shared tier) is skipped in favour of an older
surviving one, which is exactly the shared-storage argument of §V-D-6.
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.checkpoint.policy import CheckpointPolicy
from repro.checkpoint.records import CheckpointRecord
from repro.core.database import CanaryDatabase
from repro.core.ids import IdGenerator
from repro.storage.router import CheckpointStorageRouter
from repro.trace.tracer import NULL_TRACER, NullTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.fabric import FlowHandle, FlowNetwork


class CheckpointingModule:
    """Stores, retains, and restores function checkpoints."""

    def __init__(
        self,
        router: CheckpointStorageRouter,
        database: CanaryDatabase,
        ids: IdGenerator,
        *,
        policy: CheckpointPolicy | None = None,
        flush_lag_s: float = 0.0,
        tracer: Optional[NullTracer] = None,
    ) -> None:
        """
        Args:
            flush_lag_s: Models §IV-C-4-b's asynchronous flush — a
                checkpoint written on a node only becomes durable against
                that node's failure after this lag.  0 (default) means the
                replicated write path is synchronous (Ignite replicated
                caching mode).
        """
        if flush_lag_s < 0:
            raise ValueError("flush_lag_s must be non-negative")
        self.router = router
        self.database = database
        self.ids = ids
        self.policy = policy or CheckpointPolicy()
        self.flush_lag_s = flush_lag_s
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._per_function: dict[str, collections.deque[CheckpointRecord]] = {}
        self._effective_interval: dict[str, int] = {}
        #: Fleet-wide interval override (S40 adaptive controller); None
        #: defers to the policy.  Per-function pins always win.
        self.global_interval: Optional[int] = None
        # checkpoint_id -> (home node, time it becomes durable)
        self._pending_flush: dict[str, tuple[str, float]] = {}
        self._lost: set[str] = set()
        # statistics
        self.checkpoints_taken = 0
        self.checkpoints_evicted = 0
        self.restores_served = 0
        self.restores_fallback = 0  # restored from an older generation
        self.bytes_written = 0.0

    # ------------------------------------------------------------------
    # Cadence
    # ------------------------------------------------------------------
    def effective_interval(self, function_id: str) -> int:
        pinned = self._effective_interval.get(function_id)
        if pinned is not None:
            return pinned
        if self.global_interval is not None:
            return self.global_interval
        return self.policy.interval

    def set_interval(self, function_id: str, interval: int) -> None:
        """Pin a function's checkpoint interval (job-level override)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._effective_interval[function_id] = interval

    def should_checkpoint(self, function_id: str, state_index: int) -> bool:
        return self.policy.should_checkpoint(
            state_index, self.effective_interval(function_id)
        )

    def _maybe_adapt_interval(
        self, function_id: str, write_time_s: float, state_duration_s: float
    ) -> None:
        if not self.policy.adaptive_interval or state_duration_s <= 0:
            return
        ratio = write_time_s / state_duration_s
        if ratio > self.policy.max_overhead_ratio:
            current = self.effective_interval(function_id)
            self._effective_interval[function_id] = min(current * 2, 64)

    # ------------------------------------------------------------------
    # Algorithm 1: record a state
    # ------------------------------------------------------------------
    def record_state(
        self,
        *,
        job_id: str,
        function_id: str,
        state_index: int,
        size_bytes: float,
        serialize_overhead_s: float,
        now: float,
        node_id: Optional[str] = None,
        payload: Any = None,
        state_duration_s: float = 0.0,
    ) -> tuple[CheckpointRecord, float]:
        """Checkpoint one completed state; return (record, time charged).

        The returned duration is ``ckp_i`` of Eq. 2: serialization plus the
        storage write (the asynchronous flush to shared storage is off the
        critical path and not charged).
        """
        record, write_time = self._commit(
            job_id=job_id,
            function_id=function_id,
            state_index=state_index,
            size_bytes=size_bytes,
            now=now,
            node_id=node_id,
            payload=payload,
            state_duration_s=state_duration_s,
        )
        if self.flush_lag_s > 0 and node_id is not None:
            self._pending_flush[record.checkpoint_id] = (
                node_id,
                now + self.flush_lag_s,
            )
            self.tracer.instant(
                "flush",
                f"flush:{record.checkpoint_id}",
                t=now,
                duration=self.flush_lag_s,
                node=node_id,
                checkpoint=record.checkpoint_id,
                bytes=size_bytes,
            )
        self._maybe_adapt_interval(
            function_id, serialize_overhead_s + write_time, state_duration_s
        )
        charge = serialize_overhead_s + write_time
        self.tracer.instant(
            "checkpoint_write",
            f"ckpt:{function_id}:{state_index}",
            t=now,
            duration=charge,
            function=function_id,
            state_index=state_index,
            tier=record.ref.tier_name,
            bytes=size_bytes,
            **({"node": node_id} if node_id is not None else {}),
        )
        return record, charge

    def record_state_async(
        self,
        *,
        network: "FlowNetwork",
        job_id: str,
        function_id: str,
        state_index: int,
        size_bytes: float,
        serialize_overhead_s: float,
        now: float,
        node_id: Optional[str] = None,
        payload: Any = None,
        state_duration_s: float = 0.0,
        on_done: Callable[[CheckpointRecord, float], None],
    ) -> tuple[CheckpointRecord, "FlowHandle"]:
        """Network-modeled :meth:`record_state`: the write is a fabric flow.

        Bookkeeping (record, database row, retention) commits up front,
        exactly like the legacy path; the *charge* is a flow on the fabric
        whose duration depends on link contention.  ``on_done(record,
        elapsed)`` fires when the write lands; cancelling the returned
        handle (attempt death) abandons the charge, not the record.
        """
        record, _ = self._commit(
            job_id=job_id,
            function_id=function_id,
            state_index=state_index,
            size_bytes=size_bytes,
            now=now,
            node_id=node_id,
            payload=payload,
            state_duration_s=state_duration_s,
        )

        def _written() -> None:
            elapsed = network.sim.now - now
            self._maybe_adapt_interval(function_id, elapsed, state_duration_s)
            # Cancelled writes (attempt death) leave no checkpoint_write
            # span; the fabric's cancelled network_flow span records them.
            self.tracer.instant(
                "checkpoint_write",
                f"ckpt:{function_id}:{state_index}",
                t=now,
                duration=elapsed,
                function=function_id,
                state_index=state_index,
                tier=record.ref.tier_name,
                bytes=size_bytes,
                **({"node": node_id} if node_id is not None else {}),
            )
            on_done(record, elapsed)

        handle = network.write_checkpoint(
            tier_name=record.ref.tier_name,
            node_id=node_id,
            size_bytes=size_bytes,
            on_complete=_written,
            extra_latency_s=serialize_overhead_s,
            label=f"ckpt:{function_id}:{state_index}",
        )
        if self.flush_lag_s > 0 and node_id is not None:
            self._start_flush(
                network, record.checkpoint_id, node_id, size_bytes, now
            )
        return record, handle

    def _commit(
        self,
        *,
        job_id: str,
        function_id: str,
        state_index: int,
        size_bytes: float,
        now: float,
        node_id: Optional[str],
        payload: Any,
        state_duration_s: float,
    ) -> tuple[CheckpointRecord, float]:
        """Shared bookkeeping of Algorithm 1 (route, retain, persist)."""
        checkpoint_id = self.ids.checkpoint_id(function_id)
        key = f"ckpt/{function_id}/{checkpoint_id}"
        ref, write_time = self.router.write(
            key, payload, size_bytes=size_bytes, now=now, node_id=node_id
        )
        record = CheckpointRecord(
            checkpoint_id=checkpoint_id,
            job_id=job_id,
            function_id=function_id,
            state_index=state_index,
            size_bytes=size_bytes,
            ref=ref,
            created_at=now,
            payload=payload,
        )
        chain = self._per_function.setdefault(function_id, collections.deque())
        chain.append(record)
        self.database.checkpoint_info.insert(
            {
                "checkpoint_id": checkpoint_id,
                "job_id": job_id,
                "function_id": function_id,
                "state_index": state_index,
                "size_bytes": size_bytes,
                "location": ref.tier_name,
                "created_at": now,
                "available": True,
            }
        )
        self._evict(function_id, chain, state_duration_s)
        self.checkpoints_taken += 1
        self.bytes_written += size_bytes
        return record, write_time

    def _start_flush(
        self,
        network: "FlowNetwork",
        checkpoint_id: str,
        node_id: str,
        size_bytes: float,
        now: float,
    ) -> None:
        """Model the asynchronous flush as a background fabric flow.

        The checkpoint becomes durable when the copy lands (never earlier
        than the configured lag); if the node dies first, the flow is
        cancelled by the fabric and the entry stays pending → lost.
        """
        self._pending_flush[checkpoint_id] = (node_id, float("inf"))

        def _flushed() -> None:
            self.tracer.instant(
                "flush",
                f"flush:{checkpoint_id}",
                t=now,
                duration=network.sim.now - now,
                node=node_id,
                checkpoint=checkpoint_id,
                bytes=size_bytes,
            )
            if checkpoint_id in self._pending_flush:
                self._pending_flush[checkpoint_id] = (
                    node_id,
                    max(now + self.flush_lag_s, network.sim.now),
                )

        network.flush_copy(
            node_id=node_id,
            size_bytes=size_bytes,
            on_complete=_flushed,
            label=f"flush:{checkpoint_id}",
        )

    def _evict(
        self,
        function_id: str,
        chain: collections.deque,
        state_duration_s: float,
    ) -> None:
        """Drop oldest checkpoints beyond the (dynamic) retention depth."""
        latest = chain[-1]
        threshold = self.policy.retention.target_n(
            checkpoint_size_bytes=latest.size_bytes,
            state_period_s=state_duration_s or 1.0,
            db_limit_bytes=self.router.kv.db_limit_bytes,
        )
        while len(chain) > threshold:
            oldest = chain.popleft()
            self.router.delete(oldest.ref)
            self.database.checkpoint_info.update(
                oldest.checkpoint_id, available=False
            )
            self.checkpoints_evicted += 1

    # ------------------------------------------------------------------
    # Restore path
    # ------------------------------------------------------------------
    def latest(
        self, function_id: str, *, healthy_only: bool = False
    ) -> Optional[CheckpointRecord]:
        """Newest checkpoint whose payload is still fetchable.

        With ``healthy_only`` records on a refusing (browned-out) tier are
        skipped — the graceful-degradation path after a restore has
        exhausted its backoff budget against the preferred copy.
        """
        chain = self._per_function.get(function_id)
        if not chain:
            return None
        for offset, record in enumerate(reversed(chain)):
            if record.checkpoint_id in self._lost:
                continue
            if healthy_only and self.tier_refusing(record.ref.tier_name):
                continue
            if self.router.is_available(record.ref):
                self.restores_served += 1
                if offset > 0:
                    self.restores_fallback += 1
                return record
        return None

    def tier_refusing(self, tier_name: str) -> bool:
        """True while *tier_name* is browned out and refusing I/O."""
        return self.router.tiers.is_refusing(tier_name)

    def restore_time(self, record: CheckpointRecord) -> float:
        """Seconds to fetch the checkpoint payload (part of ``t_res``)."""
        return self.router.read_time(record.ref)

    def on_node_failure(
        self, node_id: str, now: Optional[float] = None
    ) -> list[str]:
        """Propagate node loss into checkpoint availability.

        Two loss modes: payloads on node-local tiers die with the node
        (router), and — with a non-zero flush lag — checkpoints written
        from the node that had not yet flushed to shared storage.
        """
        lost_keys = set(self.router.on_node_failure(node_id))
        lost_ids: list[str] = []
        if self.flush_lag_s > 0:
            for checkpoint_id, (home, durable_at) in list(
                self._pending_flush.items()
            ):
                if now is not None and now >= durable_at:
                    # Flushed long ago; stop tracking.
                    del self._pending_flush[checkpoint_id]
                    continue
                if home == node_id:
                    self._lost.add(checkpoint_id)
                    del self._pending_flush[checkpoint_id]
                    self.database.checkpoint_info.update(
                        checkpoint_id, available=False
                    )
                    lost_ids.append(checkpoint_id)
        if not lost_keys:
            return lost_ids
        for chain in self._per_function.values():
            for record in chain:
                if record.ref.key in lost_keys:
                    self.database.checkpoint_info.update(
                        record.checkpoint_id, available=False
                    )
                    lost_ids.append(record.checkpoint_id)
        return lost_ids

    def drop_function(self, function_id: str) -> None:
        """Release all checkpoints of a completed function."""
        chain = self._per_function.pop(function_id, None)
        if not chain:
            return
        for record in chain:
            self.router.delete(record.ref)
            self.database.checkpoint_info.update(
                record.checkpoint_id, available=False
            )

    def chain_length(self, function_id: str) -> int:
        return len(self._per_function.get(function_id, ()))
