"""Heartbeat-based failure detection (gray-failure chaos layer).

The paper's evaluation assumes fail-stop faults that the Core Module learns
about after a fixed delay (`PlatformConfig.detection_delay_s`).  This package
replaces that oracle, when enabled, with the mechanism real control planes
use: per-node heartbeats on the virtual clock feeding a phi-accrual-style
suspicion detector.  Detection latency becomes an emergent distribution, and
gray faults (stragglers, partitions) cause *false* suspicions that cordon a
node for placement and later reinstate it.

Everything here is off by default: a platform built without a
``DetectionConfig`` draws no RNG streams and schedules no events, so golden
pins stay byte-identical.
"""

from repro.detection.backoff import BackoffPolicy
from repro.detection.monitor import (
    DetectionConfig,
    DetectionModule,
    DetectionStats,
)

__all__ = [
    "BackoffPolicy",
    "DetectionConfig",
    "DetectionModule",
    "DetectionStats",
]
