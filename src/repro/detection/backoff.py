"""Exponential backoff with deterministic jitter.

Used by the graceful-degradation paths: invocation placement retries while
the queue is starved, and restore reads against a browned-out storage tier.
``delay`` is a pure function of the attempt index and a uniform draw handed
in by the caller (from a named RNG stream), so every backoff schedule is a
pure function of the experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff: ``min(base * factor^n, max) * (1 + j*u)``.

    Args:
        base_s: Delay before the first retry.
        factor: Multiplier applied per attempt (>= 1).
        max_s: Cap on the un-jittered delay.
        max_attempts: Retries before the caller degrades (falls back to an
            older checkpoint, restarts from scratch, gives up re-draining).
        jitter: Jitter fraction in [0, 1]; the jittered delay lands in
            ``[delay, delay * (1 + jitter))`` for a uniform draw ``u``.
    """

    base_s: float = 0.2
    factor: float = 2.0
    max_s: float = 5.0
    max_attempts: int = 6
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError("base_s must be positive")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if self.max_s < self.base_s:
            raise ValueError("max_s must be >= base_s")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, attempt_index: int, u: float = 0.0) -> float:
        """Wait before retry *attempt_index* (0-based), jittered by *u*.

        ``u`` must come from a named RNG stream (or be 0 for the
        deterministic un-jittered schedule).
        """
        if attempt_index < 0:
            raise ValueError("attempt_index must be non-negative")
        if not 0.0 <= u <= 1.0:
            raise ValueError("u must be within [0, 1]")
        base = min(self.base_s * self.factor**attempt_index, self.max_s)
        return base * (1.0 + self.jitter * u)
