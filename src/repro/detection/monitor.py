"""Per-node heartbeats and phi-accrual-style suspicion detection.

Every node's invoker daemon emits a heartbeat on the virtual clock every
``heartbeat_interval_s`` (plus deterministic jitter).  The Core Module keeps
a sliding window of inter-arrival gaps per node and, after each arrival,
arms a *suspect* timer at ``mu + z * sigma`` past the arrival, where ``z``
is the normal quantile matching the configured phi threshold — the same
shape as the phi-accrual detector of Hayashibara et al. that Akka and
Cassandra ship.

A node whose gap crosses the threshold is *suspected*: it is cordoned for
placement (not killed) and a confirm timer starts.  A heartbeat arriving
while suspected is a false positive — the node is reinstated and the
incident counted.  Silence through ``confirm_timeout_s`` *declares* the node
failed: an alive-but-gray node (zombie, long partition) is fenced via
``cluster.fail_node``, and any recovery callbacks waiting on the verdict
fire after a small processing delay.

Strategies route their ``after_detection`` continuations through
:meth:`DetectionModule.notify_after_detection`, replacing the constant
``detection_delay_s`` oracle: a container kill on a healthy node is noticed
at the next status heartbeat; a node death is noticed when the detector
declares it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from statistics import NormalDist
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.trace.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node
    from repro.sim.engine import EventHandle, Simulator


@dataclass(frozen=True)
class DetectionConfig:
    """Tuning knobs for the heartbeat detector.

    Args:
        heartbeat_interval_s: Base emission period per node.
        heartbeat_jitter: Per-beat jitter fraction; each period is scaled by
            ``1 + jitter * u`` with ``u`` drawn from the node's RNG stream.
        window: Sliding-window length (inter-arrival gaps) per node.
        phi_threshold: Suspicion level; the gap threshold sits at the
            ``1 - 10^-phi`` quantile of the observed gap distribution.
        min_std_s: Floor on the gap standard deviation, so a perfectly
            regular history does not hair-trigger the detector.
        confirm_timeout_s: Silence beyond the suspect point before the node
            is declared failed (cordon-then-confirm split).
        processing_delay_s: Control-plane handling delay between a verdict
            and the recovery callback firing.
        load_aware: Scale the suspect/confirm thresholds with the node's
            cold-start backlog and the autoscaler's ramp state, so a mass
            scale-out (daemons starved by image pulls and container boots)
            does not trigger a false-suspicion storm.
        load_hb_stretch: Fractional heartbeat-period stretch per in-flight
            cold start on the node — the *physical* load effect on the
            daemon (0 disables; independent of ``load_aware``, which is
            the detector-side compensation).
        load_cold_start_ref: Cold-start count that adds one full period of
            slack to the thresholds when ``load_aware`` is on.
        load_max_factor: Cap on the load-aware threshold multiplier.
    """

    heartbeat_interval_s: float = 0.5
    heartbeat_jitter: float = 0.1
    window: int = 20
    phi_threshold: float = 8.0
    min_std_s: float = 0.02
    confirm_timeout_s: float = 4.0
    processing_delay_s: float = 0.05
    load_aware: bool = False
    load_hb_stretch: float = 0.0
    load_cold_start_ref: int = 4
    load_max_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if not 0.0 <= self.heartbeat_jitter <= 1.0:
            raise ValueError("heartbeat_jitter must be within [0, 1]")
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.phi_threshold <= 0:
            raise ValueError("phi_threshold must be positive")
        if self.min_std_s <= 0:
            raise ValueError("min_std_s must be positive")
        if self.confirm_timeout_s <= 0:
            raise ValueError("confirm_timeout_s must be positive")
        if self.processing_delay_s < 0:
            raise ValueError("processing_delay_s must be non-negative")
        if self.load_hb_stretch < 0:
            raise ValueError("load_hb_stretch must be non-negative")
        if self.load_cold_start_ref < 1:
            raise ValueError("load_cold_start_ref must be >= 1")
        if self.load_max_factor < 1.0:
            raise ValueError("load_max_factor must be >= 1")


@dataclass(frozen=True)
class DetectionStats:
    """Counters exported into ``RunSummary`` after a run."""

    heartbeats_sent: int
    heartbeats_dropped: int
    suspicions: int
    false_suspicions: int
    detections: int
    detection_latency_mean_s: float
    cordoned_s: float


class DetectionModule:
    """Heartbeat monitor replacing the fixed ``detection_delay_s`` oracle."""

    def __init__(
        self,
        sim: "Simulator",
        cluster: "Cluster",
        config: DetectionConfig,
        *,
        tracer: Any = NULL_TRACER,
        on_reinstate: Optional[Callable[["Node"], None]] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config
        self.tracer = tracer
        self.on_reinstate = on_reinstate
        #: Optional ChaosInjector; set by the platform so partitioned nodes
        #: drop their heartbeats and zombie onsets anchor latency accounting.
        self.chaos: Any = None
        #: Optional NodeAutoscaler; set by the platform so the load-aware
        #: thresholds can widen during a scale-out ramp (booting nodes).
        self.autoscaler: Any = None
        # Normal quantile matching the phi threshold: a gap is suspicious
        # once its probability under the fitted gap distribution drops below
        # 10^-phi.
        self._z = NormalDist().inv_cdf(1.0 - 10.0 ** (-config.phi_threshold))
        self._history: dict[str, deque[float]] = {}
        self._last_beat: dict[str, float] = {}
        self._beat_handles: dict[str, "EventHandle"] = {}
        self._suspect_handles: dict[str, "EventHandle"] = {}
        self._confirm_handles: dict[str, "EventHandle"] = {}
        self._suspected_at: dict[str, float] = {}
        self._suspicion_spans: dict[str, Any] = {}
        self._we_cordoned: set[str] = set()
        self._declared: set[str] = set()
        self._waiters: dict[str, list[tuple[Callable[[], None], str]]] = {}
        self._should_continue: Optional[Callable[[], bool]] = None
        self._started = False
        self._stopped = False
        # Per-node suspicion history (true and false alike): the S39
        # suspicion-aware placement policy reads this to distrust flappy
        # nodes even after they are reinstated.
        self.node_suspicions: dict[str, int] = {}
        # Statistics.
        self.heartbeats_sent = 0
        self.heartbeats_dropped = 0
        self.suspicions = 0
        self.false_suspicions = 0
        self.detections = 0
        self.detection_latencies: list[float] = []
        self.cordoned_s = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def ensure_running(self, should_continue: Callable[[], bool]) -> None:
        """Start (or restart after an idle stop) the heartbeat chains.

        ``should_continue`` is polled at each beat; once it goes false the
        monitor cancels everything so an idle cluster does not tick forever.
        """
        self._should_continue = should_continue
        if self._started and not self._stopped:
            return
        if self._stopped:
            # Restarting after an idle gap: forget arrival times so the gap
            # across the stop does not read as a mass failure.
            self._last_beat.clear()
        self._started = True
        self._stopped = False
        for node in self.cluster.nodes:
            if (
                node.alive
                and node.provisioned
                and not node.zombie
                and node.node_id not in self._beat_handles
            ):
                self._schedule_beat(node)

    def watch_node(self, node: "Node") -> None:
        """Start covering a node that joined after start-up (scale-out).

        No-op until the monitor is running; the freshly provisioned node
        gets a clean arrival history so its boot gap is not read as a
        failure.
        """
        if not self._started or self._stopped:
            return
        if (
            node.alive
            and not node.zombie
            and node.node_id not in self._beat_handles
        ):
            self._last_beat.pop(node.node_id, None)
            self._history.pop(node.node_id, None)
            self._schedule_beat(node)

    def retire_node(self, node_id: str) -> None:
        """Stop covering a drained node the autoscaler retired.

        Cancels its timers and closes any open suspicion; silence from a
        deliberately retired node must not read as a failure.
        """
        for handles in (
            self._beat_handles,
            self._suspect_handles,
            self._confirm_handles,
        ):
            handle = handles.pop(node_id, None)
            if handle is not None:
                handle.cancel()
        suspected_at = self._suspected_at.pop(node_id, None)
        if suspected_at is not None:
            self.cordoned_s += self.sim.now - suspected_at
        span = self._suspicion_spans.pop(node_id, None)
        if span is not None:
            self.tracer.finish(span, outcome="retired")
        self._we_cordoned.discard(node_id)
        self._last_beat.pop(node_id, None)
        self._history.pop(node_id, None)

    def _stop_all(self) -> None:
        self._stopped = True
        for handles in (
            self._beat_handles,
            self._suspect_handles,
            self._confirm_handles,
        ):
            for handle in handles.values():
                handle.cancel()
            handles.clear()
        now = self.sim.now
        for node_id, since in self._suspected_at.items():
            self.cordoned_s += now - since
            span = self._suspicion_spans.pop(node_id, None)
            if span is not None:
                self.tracer.finish(span, outcome="end-of-run")
        self._suspected_at.clear()
        self._waiters.clear()

    # ------------------------------------------------------------------
    # Heartbeat emission
    # ------------------------------------------------------------------
    def _period(self, node: "Node") -> float:
        rng = self.sim.rng.stream(f"detection:hb:{node.node_id}")
        u = float(rng.uniform())
        period = self.config.heartbeat_interval_s * (
            1.0 + self.config.heartbeat_jitter * u
        )
        # A straggling node's daemon is starved of CPU along with everything
        # else, so its beats stretch — that stretch *is* the gray-failure
        # signal the detector picks up.
        if node.chaos_speed_factor != 1.0:
            period /= node.chaos_speed_factor
        # Mass cold starts starve the daemon too (image pulls and container
        # boots compete for the same cores); each in-flight cold start
        # stretches the beat.  This is the physical effect the load-aware
        # thresholds exist to compensate.
        if self.config.load_hb_stretch > 0.0 and node.cold_starts_in_flight:
            period *= (
                1.0 + self.config.load_hb_stretch * node.cold_starts_in_flight
            )
        return period

    def _load_factor(self, node: "Node") -> float:
        """Threshold multiplier compensating for launch-storm load.

        1.0 unless ``load_aware``: then slack grows with the node's own
        cold-start backlog and adds a full period while the autoscaler has
        nodes booting (a fleet-wide ramp starves every daemon at once).
        """
        cfg = self.config
        if not cfg.load_aware:
            return 1.0
        factor = 1.0 + node.cold_starts_in_flight / cfg.load_cold_start_ref
        if self.autoscaler is not None and self.autoscaler.booting_count:
            factor += 1.0
        return min(factor, cfg.load_max_factor)

    def _schedule_beat(self, node: "Node") -> None:
        self._beat_handles[node.node_id] = self.sim.call_in(
            self._period(node),
            lambda: self._beat(node),
            label=f"hb:{node.node_id}",
            shard=node.node_id,
        )

    def _beat(self, node: "Node") -> None:
        self._beat_handles.pop(node.node_id, None)
        if self._stopped:
            return
        if self._should_continue is not None and not self._should_continue():
            self._stop_all()
            return
        if not node.alive or node.zombie:
            # The daemon died with the node (or is wedged): silence from
            # here on — the detector notices via the armed suspect timer.
            return
        self.heartbeats_sent += 1
        if self.chaos is not None and self.chaos.heartbeat_blocked(
            node.node_id
        ):
            self.heartbeats_dropped += 1
        else:
            self._on_arrival(node)
        self._schedule_beat(node)

    def _on_arrival(self, node: "Node") -> None:
        now = self.sim.now
        node_id = node.node_id
        last = self._last_beat.get(node_id)
        if last is not None:
            history = self._history.setdefault(
                node_id, deque(maxlen=self.config.window)
            )
            history.append(now - last)
        self._last_beat[node_id] = now
        if node_id in self._suspected_at:
            self._reinstate(node, now)
        self._flush_waiters(node_id)
        self._arm_suspect(node, now)

    # ------------------------------------------------------------------
    # Suspicion machinery
    # ------------------------------------------------------------------
    def suspect_after(self, node_id: str) -> float:
        """Gap beyond which *node_id* becomes suspected (phi threshold)."""
        history = self._history.get(node_id)
        if not history:
            # No gaps observed yet: assume the configured period at its
            # mean jitter and the floor deviation.
            mu = self.config.heartbeat_interval_s * (
                1.0 + 0.5 * self.config.heartbeat_jitter
            )
            sigma = self.config.min_std_s
        else:
            mu = sum(history) / len(history)
            var = sum((g - mu) ** 2 for g in history) / len(history)
            sigma = max(math.sqrt(var), self.config.min_std_s)
        return mu + self._z * sigma

    def _arm_suspect(self, node: "Node", now: float) -> None:
        node_id = node.node_id
        handle = self._suspect_handles.get(node_id)
        if handle is not None:
            handle.cancel()
        threshold = self.suspect_after(node_id)
        if self.config.load_aware:
            threshold *= self._load_factor(node)
        self._suspect_handles[node_id] = self.sim.call_at(
            now + threshold,
            lambda: self._suspect(node),
            label=f"suspect:{node_id}",
            shard=node_id,
        )

    def _suspect(self, node: "Node") -> None:
        node_id = node.node_id
        self._suspect_handles.pop(node_id, None)
        if (
            self._stopped
            or node_id in self._declared
            or node_id in self._suspected_at
        ):
            return
        now = self.sim.now
        if self.config.load_aware:
            # The threshold was scaled by the load factor *at arming time*;
            # a launch storm that began afterwards stretches the beat
            # without having widened the timer.  Re-judge the gap against
            # the current load before acting, and push the timer out if the
            # node has earned more slack since.
            last = self._last_beat.get(node_id)
            if last is not None:
                allowed = self.suspect_after(node_id) * self._load_factor(
                    node
                )
                # Compare against the re-arm target, not the gap: a timer
                # pushed to ``last + allowed`` must land strictly in the
                # future, or float rounding re-arms the same instant
                # forever.
                fire_at = last + allowed
                if fire_at > now:
                    self._suspect_handles[node_id] = self.sim.call_at(
                        fire_at,
                        lambda: self._suspect(node),
                        label=f"suspect:{node_id}",
                        shard=node_id,
                    )
                    return
        self.suspicions += 1
        self.node_suspicions[node_id] = (
            self.node_suspicions.get(node_id, 0) + 1
        )
        self._suspected_at[node_id] = now
        if node.alive and not node.cordoned:
            # Cordon, don't kill: the node may merely be slow or cut off.
            node.cordoned = True
            self._we_cordoned.add(node_id)
        self._suspicion_spans[node_id] = self.tracer.begin(
            "suspicion", f"suspicion:{node_id}", node=node_id
        )
        confirm_after = self.config.confirm_timeout_s
        if self.config.load_aware:
            confirm_after *= self._load_factor(node)
        self._confirm_handles[node_id] = self.sim.call_in(
            confirm_after,
            lambda: self._confirm(node),
            label=f"confirm:{node_id}",
            shard=node_id,
        )

    def _reinstate(self, node: "Node", now: float) -> None:
        node_id = node.node_id
        suspected_at = self._suspected_at.pop(node_id)
        self.false_suspicions += 1
        self.cordoned_s += now - suspected_at
        handle = self._confirm_handles.pop(node_id, None)
        if handle is not None:
            handle.cancel()
        if node_id in self._we_cordoned:
            self._we_cordoned.discard(node_id)
            node.cordoned = False
        span = self._suspicion_spans.pop(node_id, None)
        if span is not None:
            self.tracer.finish(span, outcome="reinstated")
        if self.on_reinstate is not None:
            self.on_reinstate(node)

    def _confirm(self, node: "Node") -> None:
        node_id = node.node_id
        self._confirm_handles.pop(node_id, None)
        if self._stopped or node_id not in self._suspected_at:
            return
        now = self.sim.now
        suspected_at = self._suspected_at.pop(node_id)
        self.cordoned_s += now - suspected_at
        self._declared.add(node_id)
        self._we_cordoned.discard(node_id)
        self.detections += 1
        latency = now - self._failure_onset(node, suspected_at)
        self.detection_latencies.append(latency)
        span = self._suspicion_spans.pop(node_id, None)
        if span is not None:
            self.tracer.finish(span, outcome="confirmed", latency=latency)
        if node.alive:
            # Fence the gray node: from the platform's perspective it is
            # now dead, so strategies recover its work elsewhere.
            self.cluster.fail_node(node_id, now)
        self._flush_waiters(node_id)

    def _failure_onset(self, node: "Node", suspected_at: float) -> float:
        """Best-known onset time of the failure being confirmed."""
        if node.failed_at is not None:
            return node.failed_at
        if self.chaos is not None:
            onset = self.chaos.gray_onset.get(node.node_id)
            if onset is not None:
                return onset
        last = self._last_beat.get(node.node_id)
        return last if last is not None else suspected_at

    # ------------------------------------------------------------------
    # Recovery-callback routing (replaces the constant-delay oracle)
    # ------------------------------------------------------------------
    def notify_after_detection(
        self, node_id: str, callback: Callable[[], None], label: str = ""
    ) -> None:
        """Fire *callback* once the detector has a verdict on *node_id*.

        A loss on an already-declared node fires after the processing
        delay; otherwise the callback waits for the next heartbeat from
        the node (status report carrying the container's death) or for the
        node's own declaration — whichever the detector reaches first.
        """
        label = label or f"detect-notify:{node_id}"
        if self._stopped or node_id in self._declared:
            self.sim.call_in(
                self.config.processing_delay_s, callback, label=label
            )
            return
        self._waiters.setdefault(node_id, []).append((callback, label))

    def _flush_waiters(self, node_id: str) -> None:
        waiters = self._waiters.pop(node_id, None)
        if not waiters:
            return
        for callback, label in waiters:
            self.sim.call_in(
                self.config.processing_delay_s, callback, label=label
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_suspected(self, node_id: str) -> bool:
        return node_id in self._suspected_at

    def is_declared(self, node_id: str) -> bool:
        return node_id in self._declared

    def suspicion_score(self, node_id: str) -> float:
        """Placement-facing distrust score for *node_id*.

        Each historical suspicion (false positives included — a node the
        detector flagged once is a gray-failure risk) counts 1; a live
        suspicion adds 100 and a declared failure 1000, so the ordering
        is declared > suspected > flappy > clean regardless of history
        depth.
        """
        score = float(self.node_suspicions.get(node_id, 0))
        if node_id in self._suspected_at:
            score += 100.0
        if node_id in self._declared:
            score += 1000.0
        return score

    def stats(self) -> DetectionStats:
        latencies = self.detection_latencies
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        return DetectionStats(
            heartbeats_sent=self.heartbeats_sent,
            heartbeats_dropped=self.heartbeats_dropped,
            suspicions=self.suspicions,
            false_suspicions=self.false_suspicions,
            detections=self.detections,
            detection_latency_mean_s=mean,
            cordoned_s=self.cordoned_s,
        )
