"""Tenants and the multi-tenant traffic configuration.

A :class:`Tenant` bundles an arrival process, a workload mix, and an
optional :class:`~repro.sla.policy.SLAPolicy`.  Each tenant draws from its
own named RNG stream (``traffic:<name>``), so adding or removing a tenant
never perturbs the arrival times of the others — the same stream-isolation
contract the rest of the platform builds on.

:func:`generate_invocations` materializes every tenant's stream and merges
them under the total order ``(at_s, tenant_index, seq)``: equal-time
arrivals from different tenants (or from one bursty tenant) replay in one
deterministic sequence whether the run is serial or sharded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sla.policy import SLAPolicy
from repro.traffic.arrivals import ArrivalProcess
from repro.workloads.profiles import get_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autoscale.admission import AdmissionConfig
    from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class Tenant:
    """One traffic source: arrivals, workload mix, and an SLO.

    Attributes:
        name: Unique tenant id (also names the RNG stream).
        arrivals: Arrival process generating this tenant's timestamps.
        workloads: Workload names each invocation draws from.
        mix: Optional workload probabilities (defaults to uniform).
        functions_per_invocation: Functions per submitted job (1 = a plain
            function invocation; >1 models a fan-out workflow trigger).
        sla: Deadline policy; latencies beyond ``sla.deadline_s`` count as
            SLO violations in the run summary.
    """

    name: str
    arrivals: ArrivalProcess
    workloads: tuple[str, ...]
    mix: Optional[tuple[float, ...]] = None
    functions_per_invocation: int = 1
    sla: Optional[SLAPolicy] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not self.workloads:
            raise ValueError("tenant needs at least one workload")
        for workload in self.workloads:
            get_workload(workload)  # raises on unknown names
        if self.mix is not None and len(self.mix) != len(self.workloads):
            raise ValueError("mix length must match workloads")
        if self.functions_per_invocation <= 0:
            raise ValueError("functions_per_invocation must be positive")

    @property
    def stream_name(self) -> str:
        return f"traffic:{self.name}"


@dataclass(frozen=True)
class TrafficConfig:
    """The full open-loop traffic description for one run.

    Attributes:
        tenants: Traffic sources, merged into one arrival stream.
        duration_s: Generation horizon; arrivals beyond it are not emitted
            (in-flight work still drains after the horizon).
        admission: Optional admission control (per-tenant token bucket +
            global shedding); ``None`` admits everything.
    """

    tenants: tuple[Tenant, ...]
    duration_s: float
    admission: Optional["AdmissionConfig"] = None

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("traffic needs at least one tenant")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique: {names}")


@dataclass(frozen=True)
class Invocation:
    """One scheduled invocation of one tenant's workload."""

    at_s: float
    tenant: str
    tenant_index: int
    seq: int
    workload: str


def _workload_choices(
    tenant: Tenant, rng: np.random.Generator, n: int
) -> np.ndarray:
    if len(tenant.workloads) == 1:
        return np.zeros(n, dtype=int)
    if tenant.mix is not None:
        probabilities = np.asarray(tenant.mix, dtype=float)
        probabilities = probabilities / probabilities.sum()
    else:
        probabilities = np.full(
            len(tenant.workloads), 1.0 / len(tenant.workloads)
        )
    cumulative = np.cumsum(probabilities)
    choices = np.searchsorted(cumulative, rng.random(n), side="right")
    return np.minimum(choices, len(tenant.workloads) - 1)


def generate_invocations(
    rng: "RngRegistry", config: TrafficConfig
) -> list[Invocation]:
    """Materialize and merge every tenant's arrival stream.

    One bulk draw per tenant from its own ``traffic:<name>`` stream, then a
    single merge sort under ``(at_s, tenant_index, seq)`` — the total order
    that keeps equal-time ties deterministic across serial and sharded
    replay.
    """
    invocations: list[Invocation] = []
    for tenant_index, tenant in enumerate(config.tenants):
        stream = rng.stream(tenant.stream_name)
        times = tenant.arrivals.times(stream, config.duration_s)
        choices = _workload_choices(tenant, stream, len(times))
        invocations.extend(
            Invocation(
                at_s=float(t),
                tenant=tenant.name,
                tenant_index=tenant_index,
                seq=seq,
                workload=tenant.workloads[int(c)],
            )
            for seq, (t, c) in enumerate(zip(times, choices))
        )
    invocations.sort(key=lambda i: (i.at_s, i.tenant_index, i.seq))
    return invocations
