"""TrafficSource: replay a multi-tenant invocation stream onto a platform.

The source walks the merged ``(at_s, tenant_index, seq)``-ordered stream as
a *chain* of virtual-clock events — each arrival schedules the next — so a
10^5-invocation run keeps one pending event instead of heaping the whole
trace up front.  Each event is tagged with the submitting tenant's home
shard (its hash-assigned node), so the sharded engine's lane accounting
attributes arrival work to the right rack.

Per arrival: admission control decides (token bucket + global shedding),
admitted invocations become :class:`~repro.core.jobs.JobRequest` s through
the platform's existing admission queue, and the job-completion callback
folds every function's latency into the tenant's streaming quantile
sketch, counting SLO violations against the tenant's deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.autoscale.admission import AdmissionController
from repro.core.jobs import JobRequest
from repro.metrics.quantiles import LatencySketch
from repro.traffic.tenant import (
    Invocation,
    Tenant,
    TrafficConfig,
    generate_invocations,
)
from repro.workloads.profiles import get_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.canary import CanaryPlatform


@dataclass
class TenantStats:
    """Per-tenant traffic counters plus the latency sketch."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    completed: int = 0
    slo_violations: int = 0
    sketch: LatencySketch = field(default_factory=LatencySketch)

    def row(self) -> dict:
        """Flat dict for bench tables / JSON artifacts."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "slo_violations": self.slo_violations,
            "latency_p50_s": round(self.sketch.p50(), 6),
            "latency_p99_s": round(self.sketch.p99(), 6),
            "latency_p999_s": round(self.sketch.p999(), 6),
            "latency_mean_s": round(self.sketch.mean, 6),
        }


class TrafficSource:
    """Drives one :class:`TrafficConfig` through a platform's clock."""

    def __init__(
        self, platform: "CanaryPlatform", config: TrafficConfig
    ) -> None:
        self.platform = platform
        self.config = config
        self._tenants: dict[str, Tenant] = {
            t.name: t for t in config.tenants
        }
        #: tenant -> home node id; arrival events carry it as their shard
        #: hint so lane accounting matches where the work lands.
        num_nodes = len(platform.cluster.nodes)
        self._home_shard: dict[str, str] = {
            t.name: platform.cluster.nodes[i % num_nodes].node_id
            for i, t in enumerate(config.tenants)
        }
        self.invocations: list[Invocation] = generate_invocations(
            platform.sim.rng, config
        )
        self._cursor = 0
        self.admission: Optional[AdmissionController] = None
        if config.admission is not None:
            self.admission = AdmissionController(
                config.admission, [t.name for t in config.tenants]
            )
        self.stats: dict[str, TenantStats] = {
            t.name: TenantStats() for t in config.tenants
        }
        self._started = False

    # ------------------------------------------------------------------
    # Replay chain
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the arrival chain (idempotent)."""
        if self._started or not self.invocations:
            self._started = True
            return
        self._started = True
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._cursor >= len(self.invocations):
            return
        invocation = self.invocations[self._cursor]
        self.platform.sim.call_at(
            max(invocation.at_s, self.platform.sim.now),
            self._fire,
            label=f"traffic:{invocation.tenant}",
            shard=self._home_shard[invocation.tenant],
        )

    def _fire(self) -> None:
        invocation = self.invocations[self._cursor]
        self._cursor += 1
        self._submit(invocation)
        self._schedule_next()

    def _backlog(self) -> int:
        platform = self.platform
        return len(platform._pending_jobs) + platform.controller.queue_depth()

    def _submit(self, invocation: Invocation) -> None:
        tenant = self._tenants[invocation.tenant]
        stats = self.stats[invocation.tenant]
        stats.offered += 1
        if self.admission is not None and not self.admission.admit(
            invocation.tenant, self.platform.sim.now, self._backlog()
        ):
            stats.shed += 1
            return
        stats.admitted += 1
        request = JobRequest(
            workload=get_workload(invocation.workload),
            num_functions=tenant.functions_per_invocation,
            sla=tenant.sla,
        )
        self.platform.submit_job(
            request,
            on_complete=lambda job, name=invocation.tenant: (
                self._record_completion(name, job)
            ),
        )

    # ------------------------------------------------------------------
    # Latency accounting
    # ------------------------------------------------------------------
    def _record_completion(self, tenant_name: str, job) -> None:
        tenant = self._tenants[tenant_name]
        stats = self.stats[tenant_name]
        deadline = tenant.sla.deadline_s if tenant.sla is not None else None
        traces = self.platform.metrics.traces
        for execution in job.executions:
            trace = traces.get(execution.function_id)
            if trace is None or trace.latency is None:
                continue
            stats.completed += 1
            stats.sketch.add(trace.latency)
            if deadline is not None and trace.latency > deadline:
                stats.slo_violations += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_arrivals(self) -> int:
        """Arrivals not yet fired (keep-alive signal for detection etc.)."""
        return len(self.invocations) - self._cursor

    def totals(self) -> dict:
        """Cross-tenant aggregates for :class:`RunSummary`."""
        merged = LatencySketch()
        offered = shed = violations = 0
        for stats in self.stats.values():
            merged.merge(stats.sketch)
            offered += stats.offered
            shed += stats.shed
            violations += stats.slo_violations
        return {
            "invocations_offered": offered,
            "invocations_shed": shed,
            "slo_violations": violations,
            "latency_p50_s": merged.p50(),
            "latency_p99_s": merged.p99(),
            "latency_p999_s": merged.p999(),
        }

    def tenant_rows(self) -> dict[str, dict]:
        """Per-tenant stat rows keyed by tenant name (bench artifacts)."""
        return {name: stats.row() for name, stats in self.stats.items()}
