"""Open-loop multi-tenant production traffic.

Tenants with isolated RNG streams feed composable arrival processes
(Poisson, diurnal, MMPP on-off, trace replay) into the platform's
admission queue under a deterministic ``(time, tenant, seq)`` total order.
See DESIGN.md §S38.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    TraceArrivals,
    trace_from_file,
)
from repro.traffic.replay import TenantStats, TrafficSource
from repro.traffic.tenant import (
    Invocation,
    Tenant,
    TrafficConfig,
    generate_invocations,
)

__all__ = [
    "ArrivalProcess",
    "DiurnalArrivals",
    "Invocation",
    "OnOffArrivals",
    "PoissonArrivals",
    "Tenant",
    "TenantStats",
    "TraceArrivals",
    "TrafficConfig",
    "TrafficSource",
    "generate_invocations",
    "trace_from_file",
]
