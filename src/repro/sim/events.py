"""Event primitives for the discrete-event engine.

Events are ordered by (time, priority, sequence).  The sequence number makes
ordering total and deterministic: two events scheduled for the same instant
fire in scheduling order, independent of heap internals.

Hot-path notes
--------------
``Event`` is a slotted plain class (no dataclass machinery, no ``__dict__``)
because the simulator allocates one per scheduled callback — millions per
sweep.  The heap sort key is computed once at construction and stored on the
event (:attr:`Event.key`) instead of being re-derived on every comparison or
rebuild.

Cancellation is lazy — a cancelled event stays in the heap until it
surfaces — but the queue now bounds the garbage: when cancelled entries
outnumber live ones (and the heap is big enough to matter) the queue
compacts itself, dropping every dead entry in one O(n) rebuild.  Workloads
that cancel heavily (timeouts, standby teardowns) previously accumulated
dead entries until they happened to be popped; compaction keeps heap size
proportional to the number of *live* events.  :meth:`EventQueue.compact` is
also public so callers can force a rebuild at a known point.

``peek_time`` is a pure read: the queue maintains the invariant that the
heap top is never a cancelled event (dead tops are pruned inside ``cancel``
and ``pop``), so peeking no longer mutates the heap as a side effect.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A single scheduled callback.

    Attributes:
        time: Absolute virtual time at which the event fires.
        priority: Lower fires first among same-time events (before sequence).
        seq: Monotonic tie-breaker assigned by the queue.
        key: Precomputed heap key ``(time, priority, seq)``.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Cancelled events stay in the heap but are skipped.
        label: Optional human-readable tag used in traces and error messages.
    """

    __slots__ = ("time", "priority", "seq", "key", "callback", "cancelled",
                 "label")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Optional[Callable[[], Any]],
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.key = (time, priority, seq)
        self.callback = callback
        self.cancelled = False
        self.label = label

    def sort_key(self) -> tuple:
        return self.key

    def cancel(self) -> None:
        self.cancelled = True
        self.callback = None  # break reference cycles early

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return (f"Event(t={self.time}, prio={self.priority}, "
                f"seq={self.seq}, {state}, label={self.label!r})")


class EventQueue:
    """Min-heap of :class:`Event` with deterministic total ordering.

    Args:
        compaction_threshold: Minimum heap size before automatic compaction
            kicks in; below it the O(n) rebuild costs more than it saves.
    """

    def __init__(self, *, compaction_threshold: int = 64) -> None:
        self._heap: list[tuple[tuple, Event]] = []
        self._counter = itertools.count()
        self._live = 0
        self._cancelled = 0
        self._compaction_threshold = compaction_threshold
        self._compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical heap entries, live plus not-yet-collected cancelled."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Number of heap rebuilds performed so far."""
        return self._compactions

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        event = Event(time, priority, next(self._counter), callback, label)
        heapq.heappush(self._heap, (event.key, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Mark *event* cancelled; it is dropped lazily or at compaction."""
        if event.cancelled:
            return
        event.cancel()
        self._live -= 1
        self._cancelled += 1
        heap = self._heap
        if heap and heap[0][1].cancelled:
            self._prune_top()
        if (len(heap) >= self._compaction_threshold
                and self._cancelled * 2 > len(heap)):
            self.compact()

    def compact(self) -> int:
        """Drop every cancelled entry and re-heapify.  Returns entries freed.

        Compaction is invisible to ordering: live entries keep their
        precomputed keys, and ``heapify`` restores the heap invariant over
        exactly the surviving entries.
        """
        if not self._cancelled:
            return 0
        before = len(self._heap)
        self._heap = [entry for entry in self._heap if not entry[1].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1
        return before - len(self._heap)

    def _prune_top(self) -> None:
        """Restore the 'heap top is live' invariant after a pop/cancel."""
        heap = self._heap
        while heap and heap[0][1].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1

    def pop(self) -> Event:
        """Pop the earliest live event.  Raises IndexError when empty."""
        heap = self._heap
        while heap:
            _, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._live -= 1
            if heap and heap[0][1].cancelled:
                self._prune_top()
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None when empty.

        Pure read — the top-is-live invariant means no lazy deletion needs
        to happen here.
        """
        heap = self._heap
        return heap[0][1].time if heap else None
