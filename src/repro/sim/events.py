"""Event primitives for the discrete-event engine.

Events are ordered by (time, priority, sequence).  The sequence number makes
ordering total and deterministic: two events scheduled for the same instant
fire in scheduling order, independent of heap internals.

Hot-path notes
--------------
``Event`` is a slotted plain class (no dataclass machinery, no ``__dict__``)
because the simulator allocates one per scheduled callback — millions per
sweep.  The heap sort key is computed once at construction and stored on the
event (:attr:`Event.key`) instead of being re-derived on every comparison or
rebuild.

Cancellation is lazy — a cancelled event stays in the heap until it
surfaces — but the queue now bounds the garbage: when cancelled entries
outnumber live ones (and the heap is big enough to matter) the queue
compacts itself, dropping every dead entry in one O(n) rebuild.  Workloads
that cancel heavily (timeouts, standby teardowns) previously accumulated
dead entries until they happened to be popped; compaction keeps heap size
proportional to the number of *live* events.  :meth:`EventQueue.compact` is
also public so callers can force a rebuild at a known point.

``peek_time`` is a pure read: the queue maintains the invariant that the
heap top is never a cancelled event (dead tops are pruned inside ``cancel``
and ``pop``), so peeking no longer mutates the heap as a side effect.

Batched drains
--------------
:meth:`EventQueue.pop_batch` pops every live event strictly below a time
horizon (or the whole same-timestamp run when no horizon is given) in one
call, with ``heappop`` bound to a local — one method dispatch per *batch*
instead of per event.  The engine's run loop and the sharded engine's
window drains are built on it; callers that fire the returned events must
re-check :meth:`peek_key` between callbacks (a callback may schedule a new
event that sorts before the rest of the batch — the engine pushes the
remainder back when that happens, preserving the serial total order).

The heap list's *identity* is stable for the queue's lifetime: compaction
rebuilds it in place (``self._heap[:] = ...``), so hot loops may safely
bind the list to a local once.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A single scheduled callback.

    Attributes:
        time: Absolute virtual time at which the event fires.
        priority: Lower fires first among same-time events (before sequence).
        seq: Monotonic tie-breaker assigned by the queue.
        key: Precomputed heap key ``(time, priority, seq)``.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Cancelled events stay in the heap but are skipped.
        in_heap: True while the event occupies a heap slot.  Batched drains
            pop events *before* firing them, so a callback early in the
            batch can cancel a later batch member — ``EventQueue.cancel``
            must then skip the heap-counter bookkeeping for the
            already-popped event.
        queue: The owning queue.  The event doubles as its own cancellable
            handle (:meth:`cancel` / :attr:`active`), so scheduling does
            not allocate a separate wrapper object per event — the
            scheduling path is as hot as the drain path.
        label: Optional human-readable tag used in traces and error messages.
    """

    __slots__ = ("time", "priority", "seq", "key", "callback", "cancelled",
                 "in_heap", "queue", "label")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Optional[Callable[[], Any]],
        label: str = "",
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.key = (time, priority, seq)
        self.callback = callback
        self.cancelled = False
        self.in_heap = True
        self.queue = queue
        self.label = label

    def sort_key(self) -> tuple:
        return self.key

    @property
    def active(self) -> bool:
        """True while the callback has neither fired nor been cancelled."""
        return not self.cancelled and self.callback is not None

    def cancel(self) -> None:
        """Cancel the scheduled callback (no-op once fired or cancelled)."""
        if self.cancelled or self.callback is None:
            return
        if self.queue is not None:
            self.queue.cancel(self)
        else:  # detached event (tests): just mark it dead
            self.cancelled = True
            self.callback = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return (f"Event(t={self.time}, prio={self.priority}, "
                f"seq={self.seq}, {state}, label={self.label!r})")


class EventQueue:
    """Min-heap of :class:`Event` with deterministic total ordering.

    Args:
        compaction_threshold: Floor on the heap size before automatic
            compaction kicks in; below it the O(n) rebuild costs more than
            it saves.  The effective threshold adapts upward after each
            rebuild (to twice the surviving heap) so churn-heavy workloads
            don't thrash on back-to-back rebuilds, and decays back toward
            the floor once the heap shrinks.
    """

    def __init__(self, *, compaction_threshold: int = 64) -> None:
        self._heap: list[tuple[tuple, Event]] = []
        self._counter = itertools.count()
        self._live = 0
        self._cancelled = 0
        self._base_threshold = compaction_threshold
        self._compaction_threshold = compaction_threshold
        self._compactions = 0
        self._pushes = 0
        self._peak_heap = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def heap_size(self) -> int:
        """Physical heap entries, live plus not-yet-collected cancelled."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Number of heap rebuilds performed so far."""
        return self._compactions

    @property
    def pushes(self) -> int:
        """Total events ever scheduled into this queue."""
        return self._pushes

    @property
    def peak_heap_size(self) -> int:
        """High-water mark of physical heap entries."""
        return self._peak_heap

    @property
    def compaction_threshold(self) -> int:
        """Current (adaptive) minimum heap size for an automatic rebuild."""
        return self._compaction_threshold

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        event = Event(time, priority, next(self._counter), callback, label,
                      self)
        heap = self._heap
        heapq.heappush(heap, (event.key, event))
        self._live += 1
        self._pushes += 1
        if len(heap) > self._peak_heap:
            self._peak_heap = len(heap)
        return event

    def cancel(self, event: Event) -> None:
        """Mark *event* cancelled; it is dropped lazily or at compaction."""
        if event.cancelled:
            return
        event.cancelled = True
        event.callback = None  # break reference cycles early
        if not event.in_heap:
            # Already popped into an in-flight batch: the firing loop skips
            # it; there is no heap slot to account for.
            return
        self._live -= 1
        self._cancelled += 1
        heap = self._heap
        if heap and heap[0][1].cancelled:
            self._prune_top()
        if (len(heap) >= self._compaction_threshold
                and self._cancelled * 2 > len(heap)):
            self.compact()
        elif len(heap) * 4 < self._compaction_threshold:
            # Heap shrank well below the adapted threshold: decay so a
            # later small-but-garbage-heavy phase still gets compacted.
            self._compaction_threshold = max(
                self._base_threshold, len(heap) * 2
            )

    def compact(self) -> int:
        """Drop every cancelled entry and re-heapify.  Returns entries freed.

        Compaction is invisible to ordering: live entries keep their
        precomputed keys, and ``heapify`` restores the heap invariant over
        exactly the surviving entries.  The rebuild happens *in place* so
        the heap list's identity never changes (hot loops hold it in a
        local), and the adaptive threshold doubles past the survivors so
        the next rebuild only fires after real regrowth.
        """
        if not self._cancelled:
            return 0
        heap = self._heap
        before = len(heap)
        heap[:] = [entry for entry in heap if not entry[1].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self._compactions += 1
        self._compaction_threshold = max(
            self._base_threshold, 2 * len(heap)
        )
        return before - len(heap)

    def _prune_top(self) -> None:
        """Restore the 'heap top is live' invariant after a pop/cancel."""
        heap = self._heap
        while heap and heap[0][1].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1

    def pop(self) -> Event:
        """Pop the earliest live event.  Raises IndexError when empty."""
        heap = self._heap
        while heap:
            _, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            event.in_heap = False
            self._live -= 1
            if heap and heap[0][1].cancelled:
                self._prune_top()
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None when empty.

        Pure read — the top-is-live invariant means no lazy deletion needs
        to happen here.
        """
        heap = self._heap
        return heap[0][1].time if heap else None

    def peek_key(self) -> Optional[tuple]:
        """Sort key ``(time, priority, seq)`` of the next live event."""
        heap = self._heap
        return heap[0][0] if heap else None

    def pop_batch(
        self,
        horizon: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> list[Event]:
        """Pop a run of live events in one call.

        With *horizon*, pops every live event with ``time < horizon`` (the
        sharded engine's conservative window drain).  Without one, pops the
        run of events sharing the next event's ``(time, priority)`` — the
        same-timestamp batch fired together by :meth:`Simulator.step_batch`.
        ``limit`` caps the batch size either way.

        ``heappop`` is bound to a local so the per-event cost is one heap
        operation, not a method dispatch; cancelled entries are collected
        for free along the way.  Callers that interleave callbacks with the
        returned events must compare :meth:`peek_key` against the next
        event's ``key`` and :meth:`push_back` the remainder if a fresher
        event sorts earlier — that re-check is what keeps batch firing
        byte-identical to one-at-a-time popping.
        """
        heap = self._heap
        if not heap:
            return []
        out: list[Event] = []
        heappop = heapq.heappop
        if horizon is None:
            first = heap[0][0]
            time, priority = first[0], first[1]
        cancelled = 0
        while heap:
            key, event = heap[0]
            if horizon is not None:
                if key[0] >= horizon:
                    break
            elif key[0] != time or key[1] != priority:
                break
            if limit is not None and len(out) >= limit:
                break
            heappop(heap)
            if event.cancelled:
                cancelled += 1
                continue
            event.in_heap = False
            out.append(event)
        self._cancelled -= cancelled
        self._live -= len(out)
        if heap and heap[0][1].cancelled:
            self._prune_top()
        return out

    def push_back(self, events: list[Event]) -> None:
        """Return un-fired (still live) events from a batch to the heap.

        Events keep their original keys, so ordering is exactly as if they
        had never been popped.
        """
        heap = self._heap
        heappush = heapq.heappush
        for event in events:
            if not event.cancelled:
                event.in_heap = True
                heappush(heap, (event.key, event))
                self._live += 1
