"""Event primitives for the discrete-event engine.

Events are ordered by (time, priority, sequence).  The sequence number makes
ordering total and deterministic: two events scheduled for the same instant
fire in scheduling order, independent of heap internals.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=False)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Absolute virtual time at which the event fires.
        priority: Lower fires first among same-time events (before sequence).
        seq: Monotonic tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked when the event fires.
        cancelled: Cancelled events stay in the heap but are skipped.
        label: Optional human-readable tag used in traces and error messages.
    """

    time: float
    priority: int
    seq: int
    callback: Optional[Callable[[], Any]]
    cancelled: bool = False
    label: str = ""

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def cancel(self) -> None:
        self.cancelled = True
        self.callback = None  # break reference cycles early


class EventQueue:
    """Min-heap of :class:`Event` with deterministic total ordering."""

    def __init__(self) -> None:
        self._heap: list[tuple[tuple, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, (event.sort_key(), event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Mark *event* cancelled; it is dropped lazily when popped."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop(self) -> Event:
        """Pop the earliest live event.  Raises IndexError when empty."""
        while self._heap:
            _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty EventQueue")

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None when empty."""
        while self._heap:
            _, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return event.time
        return None
