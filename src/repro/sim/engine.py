"""The discrete-event simulator.

The simulator advances a virtual clock from event to event.  Components
schedule callbacks with :meth:`Simulator.call_at` / :meth:`Simulator.call_in`
and may cancel them through the returned :class:`EventHandle`.  The run loop
is single-threaded and deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


#: Cancellable handle for a scheduled callback.  The :class:`Event` is its
#: own handle (``.cancel()`` / ``.active`` / ``.time`` / ``.label``) — the
#: former wrapper class allocated one extra object per scheduled event,
#: which was the single largest cost on the scheduling hot path.
EventHandle = Event


class Simulator:
    """Virtual-time event loop with deterministic named RNG streams.

    Args:
        seed: Root seed; every named stream handed out by :attr:`rng` is
            derived from it, so one seed pins the full trace.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self.rng = RngRegistry(seed)
        self.seed = seed
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._event_count

    @property
    def pending(self) -> int:
        """Number of live (not cancelled, not fired) events."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
        shard: Optional[str] = None,
    ) -> EventHandle:
        """Schedule *callback* at absolute virtual *time*.

        ``shard`` is an optional partition hint (e.g. a rack name).  The
        plain engine ignores it; the sharded engine uses it to route the
        event to its partition's queue and to account lane balance.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} "
                f"(current time is {self._now})"
            )
        return self._queue.push(time, callback, priority=priority, label=label)

    def call_in(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
        shard: Optional[str] = None,
    ) -> EventHandle:
        """Schedule *callback* after *delay* seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        # Push directly (delay >= 0 implies the time is not in the past);
        # the extra hop through call_at was measurable at engine rates.
        return self._queue.push(
            self._now + delay, callback, priority=priority, label=label
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        self._now = event.time
        callback = event.callback
        event.callback = None
        self._event_count += 1
        if callback is not None:
            callback()
        return True

    def step_batch(self) -> int:
        """Fire the whole same-``(time, priority)`` run at the queue head.

        One ``pop_batch`` call replaces N pops, so same-instant bursts
        (barrier epochs, simultaneous flow finishes, mass kills) cost one
        method dispatch total.  Firing stays byte-identical to repeated
        :meth:`step`: after every callback the heap top is compared against
        the next batch member, and the remainder is pushed back the moment
        a freshly scheduled event sorts earlier.  Returns the number of
        callbacks fired (0 when the queue is empty).
        """
        queue = self._queue
        batch = queue.pop_batch()
        if not batch:
            return 0
        fired = 0
        n = len(batch)
        for i, event in enumerate(batch):
            if event.cancelled:
                # Cancelled by an earlier callback in this same batch.
                continue
            self._now = event.time
            callback = event.callback
            event.callback = None
            self._event_count += 1
            if callback is not None:
                callback()
                fired += 1
            if i + 1 < n:
                top = queue.peek_key()
                if top is not None and top < batch[i + 1].key:
                    queue.push_back(batch[i + 1:])
                    break
        return fired

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, *until* is reached, or *max_events*.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        fired = 0
        queue = self._queue
        # Fully inlined drain: this loop dominates every simulated run.
        # The heap list's identity is stable (compaction rebuilds it in
        # place), so it is bound to a local once, ``heappop`` is a local,
        # and the per-event cost is one heap pop plus the bookkeeping
        # stores callbacks can observe (``now``, ``events_processed``) —
        # no per-event method dispatch at all.
        heap = queue._heap
        heappop = heapq.heappop
        has_until = until is not None
        has_cap = max_events is not None
        try:
            while heap:
                key, event = heap[0]
                time = key[0]
                if has_until and time > until:
                    self._now = until
                    break
                if has_cap and fired >= max_events:
                    break
                heappop(heap)
                if event.cancelled:
                    queue._cancelled -= 1
                    continue
                event.in_heap = False
                queue._live -= 1
                if heap and heap[0][1].cancelled:
                    queue._prune_top()
                self._now = time
                callback = event.callback
                event.callback = None
                self._event_count += 1
                if callback is not None:
                    callback()
                fired += 1
        finally:
            self._running = False
        return self._now
