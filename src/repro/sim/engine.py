"""The discrete-event simulator.

The simulator advances a virtual clock from event to event.  Components
schedule callbacks with :meth:`Simulator.call_at` / :meth:`Simulator.call_in`
and may cancel them through the returned :class:`EventHandle`.  The run loop
is single-threaded and deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


class EventHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: EventQueue) -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def active(self) -> bool:
        """True while the callback has neither fired nor been cancelled."""
        return not self._event.cancelled and self._event.callback is not None

    def cancel(self) -> None:
        if self.active:
            self._queue.cancel(self._event)


class Simulator:
    """Virtual-time event loop with deterministic named RNG streams.

    Args:
        seed: Root seed; every named stream handed out by :attr:`rng` is
            derived from it, so one seed pins the full trace.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self.rng = RngRegistry(seed)
        self.seed = seed
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._event_count

    @property
    def pending(self) -> int:
        """Number of live (not cancelled, not fired) events."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* at absolute virtual *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at t={time} "
                f"(current time is {self._now})"
            )
        event = self._queue.push(time, callback, priority=priority, label=label)
        return EventHandle(event, self._queue)

    def call_in(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule *callback* after *delay* seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.call_at(
            self._now + delay, callback, priority=priority, label=label
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        try:
            event = self._queue.pop()
        except IndexError:
            return False
        self._now = event.time
        callback = event.callback
        event.callback = None
        self._event_count += 1
        if callback is not None:
            callback()
        return True

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, *until* is reached, or *max_events*.

        Returns the virtual time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        fired = 0
        queue = self._queue
        try:
            # Inlined step(): this loop dominates every simulated run, so
            # avoid the per-event method dispatch and re-checking the queue.
            while True:
                next_time = queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                event = queue.pop()
                self._now = event.time
                callback = event.callback
                event.callback = None
                self._event_count += 1
                if callback is not None:
                    callback()
                fired += 1
        finally:
            self._running = False
        return self._now
