"""Discrete-event simulation substrate.

Everything time-related in the reproduction runs on this engine: a virtual
clock, an ordered event queue, and deterministic named random streams.  The
engine is intentionally minimal — callbacks scheduled at absolute or relative
virtual times, plus cancellable handles — because the FaaS platform above it
is modeled as explicit state machines rather than coroutines.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "Event",
    "EventHandle",
    "EventQueue",
    "RngRegistry",
    "Simulator",
    "derive_seed",
]
