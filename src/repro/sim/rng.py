"""Deterministic named random streams.

Every stochastic decision in the reproduction (which functions fail, when
they fail, placement jitter, heterogeneity noise) draws from a stream named
after the component making the decision.  Streams are derived from a single
root seed with a stable hash, so:

* the same experiment seed reproduces identical traces bit-for-bit, and
* adding a new consumer of randomness does not perturb existing streams
  (unlike sharing one global generator).
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root: int, name: str) -> int:
    """Derive a 64-bit child seed from *root* and a stream *name*.

    Uses BLAKE2b rather than Python's ``hash`` so the derivation is stable
    across processes and interpreter versions.
    """
    digest = hashlib.blake2b(
        f"{root}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """Hands out one :class:`numpy.random.Generator` per stream name."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def reset(self, name: str) -> None:
        """Reset one stream to its initial state."""
        self._streams.pop(name, None)

    def names(self) -> list[str]:
        return sorted(self._streams)
