"""Deterministic named random streams.

Every stochastic decision in the reproduction (which functions fail, when
they fail, placement jitter, heterogeneity noise) draws from a stream named
after the component making the decision.  Streams are derived from a single
root seed with a stable hash, so:

* the same experiment seed reproduces identical traces bit-for-bit, and
* adding a new consumer of randomness does not perturb existing streams
  (unlike sharing one global generator).
"""

from __future__ import annotations

import bisect
import hashlib

import numpy as np


def derive_seed(root: int, name: str) -> int:
    """Derive a 64-bit child seed from *root* and a stream *name*.

    Uses BLAKE2b rather than Python's ``hash`` so the derivation is stable
    across processes and interpreter versions.
    """
    digest = hashlib.blake2b(
        f"{root}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """Hands out one :class:`numpy.random.Generator` per stream name."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}
        #: Maintained sorted at registration; ``names()`` used to re-sort
        #: the dict on every call, which metrics/trace exporters hit per
        #: event row.
        self._sorted_names: list[str] = []
        #: Names in first-use order.  Stream *values* are order-independent
        #: (each seed derives from the root + name hash), so this exists to
        #: make creation order an observable, testable invariant: sharded
        #: and serial runs must touch streams in the same sequence, which
        #: pins that they draw identical values for identical decisions.
        self._creation_order: list[str] = []

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = gen
            bisect.insort(self._sorted_names, name)
            self._creation_order.append(name)
        return gen

    def reset(self, name: str) -> None:
        """Reset one stream to its initial state."""
        if self._streams.pop(name, None) is not None:
            index = bisect.bisect_left(self._sorted_names, name)
            del self._sorted_names[index]
            # Creation order keeps the historical entry: a reset stream
            # re-registers (appending again), preserving the full record
            # of first-use sequencing.

    def names(self) -> list[str]:
        """Registered stream names, ascending (no per-call sort)."""
        return list(self._sorted_names)

    def creation_order(self) -> tuple[str, ...]:
        """Stream names in first-use order (the determinism pin)."""
        return tuple(self._creation_order)
