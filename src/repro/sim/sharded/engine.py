"""Lane-tagged engine for the entangled full platform.

The full Canary platform is *globally* entangled: the controller, the
storage router, the metrics sink, and the database observe (and mutate)
state from every rack on every event, at zero virtual latency.  A
conservative-lookahead partition of such a scenario welds every lane into
one execution group — there is no positive lookahead between components
that interact instantaneously — so the sharded run degenerates, *by
design*, to the exact serial total order.  That degeneration is the
byte-identity guarantee: ``shards>1`` on the platform produces the same
event sequence, the same RNG draws, and the same ``RunSummary`` as
``shards=1``, which tests and the CI smoke job assert.

What ``shards>1`` buys on the platform today is observability: every
scheduling site carries a lane hint (the node or rack the event belongs
to), and the engine accounts events per shard lane.  The resulting lane
balance is exactly the measurement needed to judge whether a scenario
*would* decompose profitably — the parallel path for decomposed
workloads is :func:`repro.sim.sharded.coordinator.run_partitioned`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, Simulator
from repro.sim.sharded.partition import ShardPlan


class ShardedSimulator(Simulator):
    """Drop-in :class:`Simulator` with per-lane (per-shard) accounting.

    Scheduling, cancellation, and the run loop are inherited unchanged —
    the drain order is the serial engine's, so golden pins cannot move.
    The only addition is the lane counters fed by the ``shard=`` hints
    that platform components attach at their scheduling sites.
    """

    def __init__(self, seed: int = 0, *, plan: ShardPlan) -> None:
        super().__init__(seed)
        self.plan = plan
        self._lane_events = [0] * plan.n_shards
        self._untagged = 0

    def call_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
        shard: Optional[str] = None,
    ) -> EventHandle:
        if shard is None:
            self._untagged += 1
        else:
            self._lane_events[self.plan.shard_of(shard)] += 1
        return super().call_at(time, callback, priority=priority,
                               label=label)

    def call_in(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
        shard: Optional[str] = None,
    ) -> EventHandle:
        if shard is None:
            self._untagged += 1
        else:
            self._lane_events[self.plan.shard_of(shard)] += 1
        return super().call_in(delay, callback, priority=priority,
                               label=label)

    # -- lane accounting --------------------------------------------------
    @property
    def lane_events(self) -> tuple[int, ...]:
        """Events scheduled per shard lane (tagged sites only)."""
        return tuple(self._lane_events)

    @property
    def untagged_events(self) -> int:
        """Events scheduled without a lane hint (global services)."""
        return self._untagged

    @property
    def lane_balance(self) -> float:
        """1 - (largest lane / tagged events); 0.0 when one lane dominates.

        The machine-independent shard-balance figure: for n perfectly
        balanced lanes it approaches ``1 - 1/n``.
        """
        tagged = sum(self._lane_events)
        if tagged <= 0:
            return 0.0
        return 1.0 - max(self._lane_events) / tagged
