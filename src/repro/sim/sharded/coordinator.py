"""Conservative-lookahead coordinator for partitioned shard programs.

Execution proceeds in barrier epochs.  Each epoch:

1. All pending cross-shard messages (produced during the previous window)
   are sorted by ``(time, dst, src, seq)`` and delivered — scheduled into
   their destination shard's queue.  A message's arrival time is provably
   at or beyond the previous horizon (sends must delay by >= lookahead),
   so delivery never lands in a shard's past.
2. The epoch window is ``[T, T + lookahead)`` where ``T`` is the minimum
   next-event time across all groups.  Every group drains exactly the
   events strictly below the horizon — events *at* the horizon (a kill
   landing exactly on a barrier) belong to the next window, in every
   backend, which is what keeps epoch boundaries a pure function of the
   event timeline.
3. Each group's window drain is independent of every peer's (that is the
   lookahead guarantee), so groups may drain serially, on threads, or in
   worker processes — the merged result is identical by construction.

Outputs are per-shard ordered record streams merged by
``(time, shard_id, emission_index)``; the merge key is total, so no
backend, scheduling jitter, or OS can perturb it.
"""

from __future__ import annotations

import math
import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.sharded.messages import ShardMessage
from repro.sim.sharded.partition import ShardPlan
from repro.sim.sharded.program import ShardContext, ShardProgram


class ShardingError(RuntimeError):
    """Raised for protocol violations (lookahead too small, bad routing)."""


@dataclass(frozen=True)
class GroupStats:
    """Per-execution-group accounting, for shard-balance observability."""

    shards: tuple[int, ...]
    events: int
    pushes: int
    peak_heap_size: int
    compactions: int
    sent: int
    received: int
    records: int


@dataclass(frozen=True)
class PartitionedRun:
    """Result of :func:`run_partitioned`.

    ``records`` is the deterministically merged output stream; everything
    else is diagnostics.  ``sharded_fraction`` is machine-independent:
    the fraction of fired events that ran *outside* the largest execution
    group — 0.0 when everything is welded into one group, approaching
    ``1 - 1/n`` for n perfectly balanced groups.
    """

    records: tuple[tuple, ...]
    group_stats: tuple[GroupStats, ...]
    epochs: int
    messages: int
    events: int
    lookahead_s: float
    backend: str
    n_shards: int
    n_groups: int

    @property
    def sharded_fraction(self) -> float:
        if self.events <= 0:
            return 0.0
        largest = max(stats.events for stats in self.group_stats)
        return 1.0 - largest / self.events


class _Group:
    """One execution group: >= 1 shards sharing a simulator."""

    def __init__(self, shards: Sequence[int], plan: ShardPlan,
                 programs: Sequence[ShardProgram], seed: int) -> None:
        self.shards = tuple(shards)
        self.sim = Simulator(seed=seed)
        self.contexts = {
            shard: ShardContext(shard, self.sim, plan) for shard in shards
        }
        for shard in shards:
            programs[shard].setup(self.contexts[shard])
        self.fired = 0

    def next_time(self) -> Optional[float]:
        return self.sim._queue.peek_time()

    def deliver(self, messages: Sequence[ShardMessage]) -> None:
        for msg in messages:
            ctx = self.contexts[msg.dst]
            self.sim.call_at(
                msg.time,
                lambda ctx=ctx, msg=msg: ctx._dispatch(
                    msg.kind, msg.src, msg.payload),
                label=f"msg:{msg.kind}",
            )

    def drain(self, horizon: float) -> int:
        """Fire every event strictly below *horizon*; return count fired.

        Batched: one ``pop_batch`` per refill, with the same freshness
        guard as :meth:`Simulator.step_batch` — if a callback schedules an
        event that sorts before the rest of the batch, the remainder goes
        back so the serial total order is preserved exactly.
        """
        sim = self.sim
        queue = sim._queue
        fired = 0
        while True:
            batch = queue.pop_batch(horizon)
            if not batch:
                break
            n = len(batch)
            i = 0
            while i < n:
                event = batch[i]
                if not event.cancelled:
                    sim._now = event.time
                    callback = event.callback
                    event.callback = None
                    sim._event_count += 1
                    if callback is not None:
                        callback()
                        fired += 1
                    if i + 1 < n:
                        top = queue.peek_key()
                        if top is not None and top < batch[i + 1].key:
                            queue.push_back(batch[i + 1:])
                            break
                i += 1
        self.fired += fired
        return fired

    def outbox(self) -> list[ShardMessage]:
        out: list[ShardMessage] = []
        for shard in self.shards:
            out.extend(self.contexts[shard]._take_outbox())
        return out

    def stats(self) -> GroupStats:
        queue = self.sim._queue
        contexts = [self.contexts[shard] for shard in self.shards]
        return GroupStats(
            shards=self.shards,
            events=self.fired,
            pushes=queue.pushes,
            peak_heap_size=queue.peak_heap_size,
            compactions=queue.compactions,
            sent=sum(ctx.sent for ctx in contexts),
            received=sum(ctx.received for ctx in contexts),
            records=sum(len(ctx._records) for ctx in contexts),
        )

    def records(self) -> list[tuple]:
        out: list[tuple] = []
        for shard in self.shards:
            out.extend(self.contexts[shard]._records)
        return out


def _epoch(group: _Group, messages: Sequence[ShardMessage],
           horizon: float) -> tuple[Optional[float], list[ShardMessage], int]:
    """One group's barrier epoch: deliver, drain, report."""
    if messages:
        group.deliver(messages)
    fired = group.drain(horizon)
    return group.next_time(), group.outbox(), fired


def _worker_main(conn, shards, plan, programs, seed) -> None:
    """Process-backend worker: owns one group, serves epoch commands."""
    group = _Group(shards, plan, programs, seed)
    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "epoch":
                _, messages, horizon = command
                conn.send(_epoch(group, messages, horizon))
            elif op == "next":
                conn.send(group.next_time())
            elif op == "finish":
                conn.send((group.records(), group.stats()))
                break
            else:  # pragma: no cover - protocol guard
                raise ShardingError(f"unknown worker command {op!r}")
    finally:
        conn.close()


class _ProcessGroup:
    """Coordinator-side proxy for a worker-process group."""

    def __init__(self, shards, plan, programs, seed, ctx) -> None:
        self.shards = tuple(shards)
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main,
            args=(child, tuple(shards), plan, programs, seed),
            daemon=True,
        )
        self._proc.start()
        child.close()

    def next_time(self) -> Optional[float]:
        self._conn.send(("next",))
        return self._conn.recv()

    def start_epoch(self, messages, horizon) -> None:
        self._conn.send(("epoch", messages, horizon))

    def finish_epoch(self):
        return self._conn.recv()

    def finish(self):
        self._conn.send(("finish",))
        records, stats = self._conn.recv()
        self._proc.join(timeout=30)
        self._conn.close()
        return records, stats


def run_partitioned(
    programs: Sequence[ShardProgram],
    plan: ShardPlan,
    *,
    seed: int = 0,
    backend: str = "serial",
    until: Optional[float] = None,
    max_epochs: Optional[int] = None,
) -> PartitionedRun:
    """Run one :class:`ShardProgram` per shard under conservative lookahead.

    *backend* is ``"serial"`` (reference order), ``"threads"`` (shared
    memory; no bytecode parallelism under the GIL but validates the
    concurrent protocol), or ``"process"`` (real multi-core).  All three
    produce byte-identical merged records — asserted in the test suite,
    guaranteed by the barrier protocol described in the module docstring.
    """
    if len(programs) != plan.n_shards:
        raise ShardingError(
            f"{len(programs)} programs for {plan.n_shards} shards"
        )
    if backend not in ("serial", "threads", "process"):
        raise ShardingError(f"unknown backend {backend!r}")

    lookahead = plan.lookahead_s
    if lookahead <= 0:
        raise ShardingError(f"lookahead must be positive, got {lookahead}")
    groups_spec = plan.groups()

    if backend == "process" and len(groups_spec) > 1:
        ctx = multiprocessing.get_context()
        groups: list = [
            _ProcessGroup(shards, plan, [programs[s] for s in range(
                plan.n_shards)], seed, ctx)
            for shards in groups_spec
        ]
        is_process = True
    else:
        groups = [
            _Group(shards, plan, programs, seed) for shards in groups_spec
        ]
        is_process = False
        pool = (ThreadPoolExecutor(max_workers=len(groups))
                if backend == "threads" and len(groups) > 1 else None)

    # Upper bound on drain horizon: events exactly at `until` still fire
    # (matching Simulator.run), so the strict-< drain gets the next float.
    cap = math.nextafter(until, math.inf) if until is not None else None

    owner = {shard: idx for idx, shards in enumerate(groups_spec)
             for shard in shards}
    next_times: list[Optional[float]] = [g.next_time() for g in groups]
    pending: list[ShardMessage] = []
    epochs = 0
    total_fired = 0
    total_messages = 0

    try:
        while True:
            if max_epochs is not None and epochs >= max_epochs:
                break
            # Earliest work anywhere: a queued event or an undelivered
            # message (delivery itself never fires anything, so the
            # estimate min(queue head, earliest message) is exact).
            candidates = [t for t in next_times if t is not None]
            candidates.extend(msg.time for msg in pending)
            if not candidates:
                break
            window_start = min(candidates)
            if until is not None and window_start > until:
                break
            horizon = window_start + lookahead
            if cap is not None and horizon > cap:
                horizon = cap

            pending.sort()
            inbound: dict[int, list[ShardMessage]] = {}
            for msg in pending:
                inbound.setdefault(owner[msg.dst], []).append(msg)
            total_messages += len(pending)
            pending = []

            # Only groups with work below the horizon (or mail) need a
            # round-trip this epoch; the skip set is derived purely from
            # deterministic state, so it is backend-independent.
            active = [
                idx for idx in range(len(groups))
                if idx in inbound
                or (next_times[idx] is not None
                    and next_times[idx] < horizon)
            ]

            if is_process:
                for idx in active:
                    groups[idx].start_epoch(inbound.get(idx, ()), horizon)
                results = [(idx, groups[idx].finish_epoch())
                           for idx in active]
            elif pool is not None:
                futures = [
                    (idx, pool.submit(_epoch, groups[idx],
                                      inbound.get(idx, ()), horizon))
                    for idx in active
                ]
                results = [(idx, fut.result()) for idx, fut in futures]
            else:
                results = [
                    (idx, _epoch(groups[idx], inbound.get(idx, ()), horizon))
                    for idx in active
                ]

            for idx, (next_time, outbox, fired) in results:
                next_times[idx] = next_time
                pending.extend(outbox)
                total_fired += fired
            epochs += 1
    finally:
        if not is_process and backend == "threads" and pool is not None:
            pool.shutdown(wait=True)

    if is_process:
        collected = [group.finish() for group in groups]
        records_nested = [records for records, _ in collected]
        stats = tuple(stats for _, stats in collected)
    else:
        records_nested = [group.records() for group in groups]
        stats = tuple(group.stats() for group in groups)

    merged: list[tuple] = []
    for group_records in records_nested:
        merged.extend(group_records)
    merged.sort(key=lambda record: (record[0], record[1], record[2]))

    return PartitionedRun(
        records=tuple(merged),
        group_stats=stats,
        epochs=epochs,
        messages=total_messages,
        events=total_fired,
        lookahead_s=lookahead,
        backend=backend,
        n_shards=plan.n_shards,
        n_groups=len(groups_spec),
    )
