"""Shard programs: the unit of decomposed, parallel-capable simulation.

A :class:`ShardProgram` owns one partition's state and event logic.  Its
only window to the outside world is the :class:`ShardContext`: local
scheduling (``call_at`` / ``call_in``), named RNG streams (shard-qualified
so every backend draws identical sequences), deterministic output records
(``emit``), and cross-shard sends (``send``) that must respect the plan's
lookahead.  Programs must be picklable (module-level classes, plain-data
constructor args) so the process backend can ship them to workers.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.sharded.messages import ShardMessage
from repro.sim.sharded.partition import ShardPlan


class ShardContext:
    """One shard's handle onto its (possibly shared) simulator.

    In a welded group several contexts share one simulator; the context is
    what keeps their identities separate — per-shard output stream, per-
    shard message sequence counter, shard-qualified RNG stream names.
    """

    def __init__(self, shard_id: int, sim, plan: ShardPlan) -> None:
        self.shard_id = shard_id
        self.sim = sim
        self.plan = plan
        self._handlers: dict[str, Callable[[int, Any], None]] = {}
        self._outbox: list[ShardMessage] = []
        self._records: list[tuple] = []
        self._seq = 0
        self.sent = 0
        self.received = 0

    # -- local scheduling ------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def call_at(self, time: float, callback, *, priority: int = 0,
                label: str = "", shard: Optional[str] = None):
        # ``shard`` lane hints are moot here: the context IS one shard.
        return self.sim.call_at(time, callback, priority=priority,
                                label=label)

    def call_in(self, delay: float, callback, *, priority: int = 0,
                label: str = "", shard: Optional[str] = None):
        return self.sim.call_in(delay, callback, priority=priority,
                                label=label)

    def stream(self, name: str):
        """Shard-qualified named RNG stream.

        The qualifier makes the stream name — and therefore the seed
        derivation — identical across serial, thread, and process
        backends, whether or not shards share a simulator.
        """
        return self.sim.rng.stream(f"shard{self.shard_id}:{name}")

    # -- deterministic output --------------------------------------------
    def emit(self, *record: Any) -> None:
        """Append one output record to this shard's ordered stream.

        The coordinator merges per-shard streams by
        ``(time, shard_id, emission_index)`` — a total order that no
        backend can perturb, because each stream's internal order is fixed
        by the shard's own (deterministic) event order.
        """
        self._records.append((self.sim.now, self.shard_id,
                              len(self._records)) + record)

    # -- cross-shard messaging -------------------------------------------
    def on(self, kind: str, handler: Callable[[int, Any], None]) -> None:
        """Register ``handler(src_shard, payload)`` for message *kind*."""
        self._handlers[kind] = handler

    def send(self, dst: int, delay: float, kind: str,
             payload: Any = ()) -> None:
        """Send *payload* to shard *dst*, arriving after *delay* seconds.

        The delay must be at least the plan's lookahead — that bound is
        exactly what makes the conservative window drain safe, so it is
        enforced, not assumed.
        """
        from repro.sim.sharded.coordinator import ShardingError

        if delay < self.plan.lookahead_s:
            raise ShardingError(
                f"cross-shard send {kind!r} from shard {self.shard_id} to "
                f"{dst} has delay {delay:.3e}s below the lookahead "
                f"{self.plan.lookahead_s:.3e}s"
            )
        if not 0 <= dst < self.plan.n_shards:
            raise ShardingError(f"unknown destination shard {dst}")
        self._outbox.append(ShardMessage(
            time=self.sim.now + delay,
            dst=dst,
            src=self.shard_id,
            seq=self._seq,
            kind=kind,
            payload=payload,
        ))
        self._seq += 1
        self.sent += 1

    def _dispatch(self, kind: str, src: int, payload: Any) -> None:
        handler = self._handlers.get(kind)
        if handler is None:
            from repro.sim.sharded.coordinator import ShardingError

            raise ShardingError(
                f"shard {self.shard_id} has no handler for message kind "
                f"{kind!r}"
            )
        self.received += 1
        handler(src, payload)

    def _take_outbox(self) -> list[ShardMessage]:
        outbox, self._outbox = self._outbox, []
        return outbox


class ShardProgram:
    """Base class for one partition of a decomposed scenario.

    Subclasses override :meth:`setup` to build their state and schedule
    their initial events, and register message handlers via ``ctx.on``.
    State must be reachable only from this program — cross-shard effects
    go through ``ctx.send``.
    """

    def setup(self, ctx: ShardContext) -> None:
        raise NotImplementedError
