"""Sharded deterministic simulation (conservative lookahead).

A single scenario is partitioned into per-rack (or per-component) event
shards, each with its own :class:`~repro.sim.events.EventQueue`,
synchronized conservatively: a shard may advance to
``min(peer horizons) + lookahead`` where the lookahead is derived from the
minimum cross-partition latency (fabric ToR/core hop, heartbeat interval,
tier access latency).  Cross-shard interactions are timestamped messages
drained at barrier epochs in deterministic ``(time, dst, src, seq)``
order.

Two execution surfaces share the machinery:

* :func:`run_partitioned` runs :class:`ShardProgram` partitions — scenario
  fragments with explicitly disjoint state — under serial, thread, or
  process backends.  Every backend produces byte-identical merged output
  (the serial backend *is* the reference; see ``tests/test_sharded.py``).
* :class:`ShardedSimulator` is the drop-in engine for the entangled full
  platform: lanes are tagged and accounted per rack, but the platform's
  zero-latency global services weld every lane into one execution group,
  so the drain order — and therefore every golden pin — is exactly the
  serial engine's.
"""

from repro.sim.sharded.coordinator import (
    GroupStats,
    PartitionedRun,
    ShardingError,
    run_partitioned,
)
from repro.sim.sharded.engine import ShardedSimulator
from repro.sim.sharded.messages import ShardMessage
from repro.sim.sharded.partition import (
    ShardPlan,
    derive_lookahead,
    rack_plan,
    resolve_shards,
)
from repro.sim.sharded.program import ShardContext, ShardProgram

__all__ = [
    "GroupStats",
    "PartitionedRun",
    "ShardContext",
    "ShardMessage",
    "ShardPlan",
    "ShardProgram",
    "ShardedSimulator",
    "ShardingError",
    "derive_lookahead",
    "rack_plan",
    "resolve_shards",
    "run_partitioned",
]
