"""Timestamped inter-shard messages.

Cross-shard interactions (remote checkpoint writes, replication flows,
heartbeats, placements) never touch a peer shard's state directly — they
become :class:`ShardMessage` records carried to the next barrier epoch and
delivered in deterministic ``(time, dst, src, seq)`` order.  The sort key
is total: ``seq`` is a per-source counter, so two messages from one shard
can never tie, and ties across shards break on the (unique) source id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class ShardMessage:
    """One cross-shard interaction, ordered by ``(time, dst, src, seq)``.

    ``kind`` and ``payload`` are excluded from ordering; payloads must be
    plain picklable data (they cross process boundaries under the process
    backend — callbacks never do).
    """

    time: float
    dst: int
    src: int
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=())
