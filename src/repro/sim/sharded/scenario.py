"""A fabric-heavy multi-rack shard scenario (bench + determinism tests).

Each rack is one shard: a :class:`RackProgram` owning its own mini
cluster and :class:`~repro.network.fabric.FlowNetwork` instance, driving
a Poisson-ish stream of intra-rack transfers.  A fraction of completed
flows replicate to the next rack — a cross-shard message whose delay is
the cross-rack fabric latency (>= lookahead).  Every rack also heartbeats
a monitor shard on a fixed period, exercising steady low-rate cross-shard
traffic alongside the bursty replication.

This is the scenario behind ``BENCH_shard.json``: per-rack state is
genuinely disjoint (each shard's fabric, RNG streams, and flow bookkeeping
are its own), so the per-rack groups run truly in parallel under the
process backend, while the serial backend defines the byte-identical
reference order.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.topology import Topology
from repro.network.config import NetworkModelConfig
from repro.sim.sharded.partition import ShardPlan
from repro.sim.sharded.program import ShardContext, ShardProgram
from repro.storage.tiers import TierRegistry

#: Cross-rack replication latency; also the plan lookahead (it is the
#: minimum cross-partition latency in this scenario).
CROSS_RACK_DELAY_S = 1e-3
HEARTBEAT_PERIOD_S = 10e-3


class RackProgram(ShardProgram):
    """One rack's shard: local fabric + workload + replication."""

    def __init__(
        self,
        rack: int,
        num_racks: int,
        *,
        nodes_per_rack: int = 4,
        requests: int = 200,
        mean_interarrival_s: float = 0.4e-3,
        mean_size_bytes: float = 4e6,
        replicate_every: int = 3,
        duration_s: float = 0.25,
    ) -> None:
        self.rack = rack
        self.num_racks = num_racks
        self.nodes_per_rack = nodes_per_rack
        self.requests = requests
        self.mean_interarrival_s = mean_interarrival_s
        self.mean_size_bytes = mean_size_bytes
        self.replicate_every = replicate_every
        self.duration_s = duration_s

    def setup(self, ctx: ShardContext) -> None:
        from repro.network.fabric import FlowNetwork

        self._ctx = ctx
        cluster = Cluster(
            self.nodes_per_rack, topology=Topology(num_racks=1)
        )
        self._nodes = [node.node_id for node in cluster.nodes]
        self._network = FlowNetwork(
            ctx,
            cluster=cluster,
            tiers=TierRegistry(),
            config=NetworkModelConfig(),
        )
        self._arrivals = ctx.stream("arrivals")
        self._completed = 0
        ctx.on("replicate", self._on_replicate)

        # Pre-draw the whole arrival schedule in one vectorized pass: the
        # draw order is fixed at setup, so no backend can perturb it, and
        # the hot loop never pays the per-call numpy scalar overhead.
        n = self.requests
        gaps = self._arrivals.exponential(self.mean_interarrival_s, size=n)
        sizes = self._arrivals.exponential(self.mean_size_bytes, size=n)
        pairs = self._arrivals.integers(
            0, self.nodes_per_rack, size=(n, 2))
        time = 0.0
        for i in range(n):
            time += float(gaps[i])
            src = self._nodes[int(pairs[i, 0])]
            dst = self._nodes[(int(pairs[i, 1]) + 1) % self.nodes_per_rack
                              if src == self._nodes[int(pairs[i, 1])]
                              else int(pairs[i, 1])]
            ctx.call_at(
                time,
                lambda i=i, src=src, dst=dst, size=float(sizes[i]):
                    self._start_transfer(i, src, dst, size),
                label=f"arrival:{self.rack}:{i}",
            )
        self._schedule_heartbeat(0)

    def _schedule_heartbeat(self, beat: int) -> None:
        at = (beat + 1) * HEARTBEAT_PERIOD_S
        if at > self.duration_s:
            return
        self._ctx.call_at(
            at,
            lambda beat=beat: self._heartbeat(beat),
            label=f"hb:{self.rack}:{beat}",
        )

    def _heartbeat(self, beat: int) -> None:
        self._ctx.send(
            self.num_racks, CROSS_RACK_DELAY_S, "hb", (self.rack, beat)
        )
        self._schedule_heartbeat(beat + 1)

    def _start_transfer(self, index: int, src: str, dst: str,
                        size: float) -> None:
        self._network.transfer(
            src, dst, size,
            on_complete=lambda index=index, size=size:
                self._on_complete(index, size),
            label=f"xfer:{self.rack}:{index}",
        )

    def _on_complete(self, index: int, size: float) -> None:
        self._completed += 1
        self._ctx.emit("flow", index, round(size))
        if self.replicate_every and index % self.replicate_every == 0:
            peer = (self.rack + 1) % self.num_racks
            if peer != self.rack:
                self._ctx.send(
                    peer, CROSS_RACK_DELAY_S, "replicate",
                    (self.rack, index, round(size)),
                )

    def _on_replicate(self, src: int, payload) -> None:
        src_rack, index, size = payload
        # Ingest the replica through this rack's fabric: gateway node
        # (node 0) streams it to a deterministic target node.
        target = self._nodes[index % self.nodes_per_rack]
        if target == self._nodes[0]:
            target = self._nodes[1 % self.nodes_per_rack]
        self._network.transfer(
            self._nodes[0], target, float(size),
            on_complete=lambda src_rack=src_rack, index=index:
                self._ctx.emit("replica", src_rack, index),
            label=f"replica:{src_rack}:{index}",
        )


class MonitorProgram(ShardProgram):
    """Global monitor shard: collects heartbeats from every rack."""

    def __init__(self, num_racks: int) -> None:
        self.num_racks = num_racks

    def setup(self, ctx: ShardContext) -> None:
        self._ctx = ctx
        self._beats = [0] * self.num_racks
        ctx.on("hb", self._on_heartbeat)

    def _on_heartbeat(self, src: int, payload) -> None:
        rack, beat = payload
        self._beats[rack] = beat + 1
        self._ctx.emit("hb", rack, beat)


def build_scenario(
    num_racks: int = 4,
    *,
    nodes_per_rack: int = 4,
    requests_per_rack: int = 200,
    welded: bool = False,
    **rack_kwargs,
) -> tuple[list[ShardProgram], ShardPlan]:
    """Programs + plan for the multi-rack scenario.

    Shards ``0..num_racks-1`` are the racks; shard ``num_racks`` is the
    monitor.  With ``welded=True`` every shard shares one simulator — the
    serial-order reference used by the identity tests.
    """
    programs: list[ShardProgram] = [
        RackProgram(rack, num_racks, nodes_per_rack=nodes_per_rack,
                    requests=requests_per_rack, **rack_kwargs)
        for rack in range(num_racks)
    ]
    programs.append(MonitorProgram(num_racks))
    assignments = {f"rack-{rack}": rack for rack in range(num_racks)}
    assignments["monitor"] = num_racks
    plan = ShardPlan(
        n_shards=num_racks + 1,
        lookahead_s=CROSS_RACK_DELAY_S,
        assignments=assignments,
    )
    return programs, plan.welded() if welded else plan
