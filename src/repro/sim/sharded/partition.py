"""Topology-driven partitioning and conservative-lookahead derivation.

The partitioner maps scenario lanes (racks, and the nodes inside them) to
shard ids.  The lookahead — how far a shard may run past the global barrier
before it could possibly be affected by a peer — is the minimum latency any
cross-partition interaction can have: a fabric ToR/core hop takes
``2 * hop_latency_s`` one way, a detection heartbeat arrives at most every
``heartbeat_interval_s``, and a remote storage tier answers no faster than
its access latency.  Any cross-shard message must therefore carry a delay of
at least the lookahead, which is what makes the conservative window drain
safe: events inside ``[T, T + lookahead)`` can only be caused by state that
was already visible at the last barrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union


#: Fallback lookahead when no scenario timing is available: well below any
#: modelled network/heartbeat latency, far above float granularity.
DEFAULT_LOOKAHEAD_S = 1e-4


def derive_lookahead(
    *,
    network=None,
    detection=None,
    tiers: Iterable = (),
    default: float = DEFAULT_LOOKAHEAD_S,
) -> float:
    """Minimum cross-partition latency from the scenario's own config.

    Accepts the scenario's :class:`~repro.network.config.NetworkModelConfig`,
    :class:`~repro.detection.monitor.DetectionConfig`, and storage tier
    specs; any of them may be None/empty.  Returns the smallest latency a
    cross-shard interaction can exhibit, floored at *default*.
    """
    candidates: list[float] = []
    if network is not None and getattr(network, "enabled", True):
        hop = getattr(network, "hop_latency_s", None)
        if hop:
            # ToR + core hop: the fastest a cross-rack flow can deliver.
            candidates.append(2.0 * hop)
    if detection is not None:
        interval = getattr(detection, "heartbeat_interval_s", None)
        if interval:
            candidates.append(interval)
    for tier in tiers or ():
        access = (getattr(tier, "access_latency_s", None)
                  or getattr(tier, "write_latency_s", None))
        if access:
            candidates.append(access)
    live = [value for value in candidates if value > 0]
    if not live:
        return default
    return max(min(live), default)


def resolve_shards(requested: Union[int, str], num_racks: int) -> int:
    """Resolve a ``shards`` request (int or ``"auto"``) to a shard count.

    ``"auto"`` follows the topology: one shard per rack.  Integers are
    clamped to ``[1, num_racks]`` — more shards than racks would leave
    empty partitions paying barrier costs for nothing.
    """
    if requested == "auto":
        return max(1, int(num_racks))
    count = int(requested)
    if count < 1:
        raise ValueError(f"shards must be >= 1 or 'auto', got {requested!r}")
    return min(count, max(1, int(num_racks)))


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of scenario lanes to shards, plus the synchronization gap.

    Attributes:
        n_shards: Number of shards (1 means the plain serial engine).
        lookahead_s: Conservative window width; every cross-shard message
            must be delayed by at least this much.
        assignments: Lane key (rack or node name) → shard id.
        welds: Pairs of shard ids that share entangled state and must
            execute in one group (same event queue, serial total order).
            The full platform's global services weld *every* shard; a
            decomposed shard program welds none.
        default_shard: Shard for lanes absent from *assignments*.
    """

    n_shards: int
    lookahead_s: float = DEFAULT_LOOKAHEAD_S
    assignments: Mapping[str, int] = field(default_factory=dict)
    welds: frozenset = frozenset()
    default_shard: int = 0

    def shard_of(self, lane: Optional[str]) -> int:
        """Shard id for a lane key (rack/node name); default when unknown."""
        if lane is None:
            return self.default_shard
        shard = self.assignments.get(lane)
        if shard is not None:
            return shard
        # Node keys fall back to their rack's assignment via the same
        # round-robin the cluster topology uses (node-07 -> rack index).
        if lane.startswith("node-"):
            try:
                index = int(lane.rsplit("-", 1)[1])
            except ValueError:
                return self.default_shard
            return index % self.n_shards
        return self.default_shard

    def groups(self) -> tuple[tuple[int, ...], ...]:
        """Execution groups: connected components of the weld graph.

        Shards in one group share a simulator (serial order among them);
        distinct groups are the units of real parallelism.  Sorted for
        determinism: groups by smallest member, members ascending.
        """
        parent = list(range(self.n_shards))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in self.welds:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
        members: dict[int, list[int]] = {}
        for shard in range(self.n_shards):
            members.setdefault(find(shard), []).append(shard)
        return tuple(
            tuple(sorted(group))
            for _, group in sorted(members.items())
        )

    def welded(self) -> "ShardPlan":
        """A copy whose shards all execute in one group (serial order).

        This is what the entangled full platform uses: lane accounting is
        preserved, but every event shares one queue, so the total order —
        and every golden pin — is exactly the serial engine's.
        """
        welds = frozenset(
            (shard, shard + 1) for shard in range(self.n_shards - 1)
        )
        return ShardPlan(
            n_shards=self.n_shards,
            lookahead_s=self.lookahead_s,
            assignments=self.assignments,
            welds=welds,
            default_shard=self.default_shard,
        )


def rack_plan(
    num_nodes: int,
    num_racks: int = 4,
    shards: Union[int, str] = "auto",
    *,
    lookahead_s: float = DEFAULT_LOOKAHEAD_S,
    weld_all: bool = False,
) -> ShardPlan:
    """Per-rack plan matching :meth:`repro.cluster.topology.Topology.rack_for`.

    Racks are assigned round-robin to shards (rack index mod shard count),
    and every node maps to its rack's shard.  With *weld_all* the plan runs
    as one execution group — the entangled-platform mode.
    """
    count = resolve_shards(shards, num_racks)
    assignments: dict[str, int] = {}
    for rack in range(num_racks):
        assignments[f"rack-{rack}"] = rack % count
    for node in range(num_nodes):
        assignments[f"node-{node:02d}"] = (node % num_racks) % count
    plan = ShardPlan(
        n_shards=count,
        lookahead_s=lookahead_s,
        assignments=assignments,
    )
    return plan.welded() if weld_all else plan
